// Sharded ADS storage: a FlatAdsSet split into contiguous node ranges,
// one self-contained v2 binary file per shard plus a small text manifest.
//
// A billion-node sketch arena does not fit one serving process. Sharding by
// contiguous node range keeps every whole-graph sweep a sequence of linear
// passes: queries load one shard arena at a time (lazily, with a bounded
// number resident) and visit nodes in exactly the same order as the
// unsharded sweep, so every estimate — including the floating-point
// accumulation order of the distance-distribution histograms — is bitwise
// identical to the single-arena result. Point queries route ViewOf(v) to
// the owning shard via the manifest's range table.
//
// ShardedAdsSet implements AdsBackend (ads/backend.h), so it serves the
// same whole-graph queries as the in-memory and mmap single-arena engines.
// Two serving upgrades are opt-in through ShardedOptions:
//
//   * prefetch — a background thread loads the next prefetch_depth shards
//     while the sweep consumes shard s (driven by the AdsBackend::Prefetch
//     residency hints the query sweeps emit), hiding shard I/O behind
//     compute; lookahead > 1 keeps the pipeline full on storage whose
//     latency exceeds one shard's compute time (spinning or networked
//     disks). The worker only ever writes its own staging slots; the
//     consuming thread alone touches the residency cache, so results stay
//     deterministic and bitwise identical to non-prefetching serving.
//   * use_mmap — shard arenas are opened with MmapAdsSet instead of the
//     copying loader: residency then costs address space, not heap copies.
//
// On disk a sharded set is a directory:
//
//   MANIFEST            hipads-shards-v1: sketch params + range table
//   shard-00000.ads2    hipads-ads-v2 arena of nodes [begin_0, end_0)
//   shard-00001.ads2    ...
//
// Each shard file is a complete, independently loadable ADS file whose
// local node i is global node begin + i; entry target ids stay global.

#ifndef HIPADS_ADS_SHARD_H_
#define HIPADS_ADS_SHARD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ads/backend.h"
#include "ads/flat_ads.h"
#include "ads/serialize.h"
#include "util/status.h"

namespace hipads {

/// One shard's slice of the node space: the sketches of [begin, end).
struct ShardInfo {
  std::string file;  // filename, relative to the manifest's directory
  NodeId begin = 0;
  NodeId end = 0;  // exclusive
  uint64_t num_entries = 0;
};

/// Filename of the manifest inside a shard directory.
inline constexpr char kShardManifestName[] = "MANIFEST";

/// True iff `path` is a shard directory (contains a manifest) or a
/// manifest file itself — the dispatch test serving front ends use to pick
/// ShardedAdsSet::Open over ReadFlatAdsSetFile.
bool IsShardedAdsPath(const std::string& path);

/// Split points for `num_shards` contiguous shards balanced by entry count
/// (node counts can be wildly uneven when sketch sizes differ). Returns the
/// begin node of each shard; the first is always 0. Fewer shards come back
/// when the set has fewer nodes than requested shards.
std::vector<NodeId> BalancedShardSplits(const FlatAdsSet& set,
                                        uint32_t num_shards);

/// Writes `set` into `dir` (created if needed) as one v2 binary file per
/// shard plus the manifest; `split_begins` as from BalancedShardSplits
/// (sorted, unique, first element 0). The manifest is written last, so a
/// directory with a manifest is complete.
Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          const std::vector<NodeId>& split_begins);

/// Convenience overload: entry-balanced contiguous split into `num_shards`.
Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          uint32_t num_shards);

/// Serving options for ShardedAdsSet::Open.
struct ShardedOptions {
  /// Required for exponential/priority rank kinds, as in ParseAdsSet.
  std::function<double(uint64_t)> beta = nullptr;
  /// Max shard arenas resident at once (LRU eviction past the bound).
  uint32_t max_resident = 1;
  /// Load hinted shards on a background thread. Staged arenas are
  /// heap-held until the sweep reaches them, so prefetching transiently
  /// keeps up to prefetch_depth arenas beyond max_resident in memory.
  bool prefetch = false;
  /// Lookahead of the prefetch pipeline: a Prefetch(r) hint enqueues
  /// shards [r, r + prefetch_depth) that are not yet resident. 1 (the
  /// default) reproduces single-shard lookahead; deeper pipelines help
  /// when shard load latency exceeds one shard's compute. Clamped to
  /// >= 1; ignored unless prefetch is set.
  uint32_t prefetch_depth = 1;
  /// Open shard arenas zero-copy with MmapAdsSet instead of the copying
  /// loader.
  bool use_mmap = false;
};

/// A sharded ADS set opened for serving. Shard arenas load lazily on first
/// access; at most max_resident stay live (least-recently-used eviction).
/// The range a caller is consuming is its most recently touched one, so
/// LRU never evicts it while max_resident >= 2; with max_resident = 1,
/// touching a second range invalidates the first range's views.
///
/// The consumer side is not thread-safe: concurrent Range()/ViewOf() calls
/// must be externally serialized (the whole-graph sweeps in ads/queries.h
/// do this naturally — they walk shards sequentially and parallelize
/// inside each). The prefetch worker runs concurrently but communicates
/// only through its own locked staging slot. Views and arena pointers stay
/// valid until the owning shard is evicted, i.e. until max_resident other
/// shards have been touched.
class ShardedAdsSet : public AdsBackend {
 public:
  /// An empty set (no shards, no nodes); the state StatusOr needs to
  /// default-construct. Use Open to get a usable one.
  ShardedAdsSet();
  ShardedAdsSet(ShardedAdsSet&&) noexcept;
  ShardedAdsSet& operator=(ShardedAdsSet&&) noexcept;
  ~ShardedAdsSet() override;

  /// Opens `path`, which may be the manifest file or its directory.
  static StatusOr<ShardedAdsSet> Open(const std::string& path,
                                      const ShardedOptions& options);

  /// Back-compat overload: copying loader, no prefetch.
  static StatusOr<ShardedAdsSet> Open(
      const std::string& path,
      std::function<double(uint64_t)> beta = nullptr,
      uint32_t max_resident = 1);

  SketchFlavor flavor() const override { return flavor_; }
  uint32_t k() const override { return k_; }
  const RankAssignment& ranks() const override { return ranks_; }
  size_t num_nodes() const override { return num_nodes_; }
  uint64_t TotalEntries() const override;

  size_t num_shards() const { return shards_.size(); }
  const std::vector<ShardInfo>& shards() const { return shards_; }

  /// Index of the shard owning node v (v must be < num_nodes()).
  uint32_t ShardOf(NodeId v) const;

  /// Cheap up-front integrity check of every shard file the manifest
  /// references: exists and is exactly the v2 byte size its node/entry
  /// counts imply. Catches missing and truncated shard files before a
  /// sweep starts, without loading any arena. (Content damage inside a
  /// right-sized file is still caught by the checksum at load time.)
  Status ValidateFiles() const;

  // AdsBackend surface: one range per shard, loaded lazily on Range();
  // Prefetch(r) hands the hint to the background worker when enabled.
  uint32_t NumRanges() const override {
    return static_cast<uint32_t>(shards_.size());
  }
  StatusOr<AdsArenaView> Range(uint32_t r) const override;
  StatusOr<AdsView> ViewOf(NodeId v) const override;
  StatusOr<HipView> HipOf(NodeId v) const override;
  /// True iff EVERY shard file carries the HIP section (size-probed once,
  /// lazily, without loading arenas). A mixed set reports false but still
  /// serves precomputed weights from the shards that have them — each
  /// range's arena view carries its own hip pointers.
  bool HipResident() const override;
  void Prefetch(uint32_t r) const override;
  // Lazy loading + LRU eviction mutate residency state on reads, so the
  // sharded engine keeps the base-class contract: external serialization.
  bool ImmutableReads() const override { return false; }

  /// Number of shard arenas currently in memory (for tests/metrics).
  uint32_t NumResident() const;

  /// Number of shard-file loads performed so far (consumer + prefetch
  /// thread combined; for tests/metrics). A whole-graph sweep — however
  /// many statistics its SweepPlan fuses — costs exactly num_shards()
  /// loads from cold.
  uint64_t NumShardLoads() const;

 private:
  struct LoadContext;
  class Prefetcher;

  // Returns shard s's arena, consuming a staged prefetch result or loading
  // synchronously, installing into the residency cache with LRU eviction.
  StatusOr<const AdsBackend*> Resident(uint32_t s) const;
  void EvictFor(uint32_t installing) const;

  std::string dir_;
  SketchFlavor flavor_ = SketchFlavor::kBottomK;
  uint32_t k_ = 0;
  RankAssignment ranks_ = RankAssignment::Uniform(0);
  uint64_t num_nodes_ = 0;
  std::vector<ShardInfo> shards_;
  uint32_t max_resident_ = 1;
  uint32_t prefetch_depth_ = 1;

  // Everything a shard load needs, shared with the prefetch worker so the
  // set object itself stays movable while the worker runs.
  std::shared_ptr<const LoadContext> load_ctx_;

  // Lazy-load cache: resident_[s] is null until shard s is first touched;
  // last_used_ drives LRU eviction once more than max_resident_ are live.
  // Touched only by the (externally serialized) consumer thread.
  mutable std::vector<std::unique_ptr<AdsBackend>> resident_;
  mutable std::vector<uint64_t> last_used_;
  mutable uint64_t tick_ = 0;
  mutable std::unique_ptr<Prefetcher> prefetcher_;
  // Lazily computed HipResident() answer (-1 = unknown). Consumer-side
  // state like the residency cache: externally serialized.
  mutable int8_t hip_resident_ = -1;
};

}  // namespace hipads

#endif  // HIPADS_ADS_SHARD_H_
