// Sharded ADS storage: a FlatAdsSet split into contiguous node ranges,
// one self-contained v2 binary file per shard plus a small text manifest.
//
// A billion-node sketch arena does not fit one serving process. Sharding by
// contiguous node range keeps every whole-graph sweep a sequence of linear
// passes: queries load one shard arena at a time (lazily, with a bounded
// number resident) and visit nodes in exactly the same order as the
// unsharded sweep, so every estimate — including the floating-point
// accumulation order of the distance-distribution histograms — is bitwise
// identical to the single-arena result. Point queries route of(v) to the
// owning shard via the manifest's range table.
//
// On disk a sharded set is a directory:
//
//   MANIFEST            hipads-shards-v1: sketch params + range table
//   shard-00000.ads2    hipads-ads-v2 arena of nodes [begin_0, end_0)
//   shard-00001.ads2    ...
//
// Each shard file is a complete, independently loadable ADS file whose
// local node i is global node begin + i; entry target ids stay global.

#ifndef HIPADS_ADS_SHARD_H_
#define HIPADS_ADS_SHARD_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ads/flat_ads.h"
#include "ads/serialize.h"
#include "util/status.h"

namespace hipads {

/// One shard's slice of the node space: the sketches of [begin, end).
struct ShardInfo {
  std::string file;  // filename, relative to the manifest's directory
  NodeId begin = 0;
  NodeId end = 0;  // exclusive
  uint64_t num_entries = 0;
};

/// Filename of the manifest inside a shard directory.
inline constexpr char kShardManifestName[] = "MANIFEST";

/// True iff `path` is a shard directory (contains a manifest) or a
/// manifest file itself — the dispatch test serving front ends use to pick
/// ShardedAdsSet::Open over ReadFlatAdsSetFile.
bool IsShardedAdsPath(const std::string& path);

/// Split points for `num_shards` contiguous shards balanced by entry count
/// (node counts can be wildly uneven when sketch sizes differ). Returns the
/// begin node of each shard; the first is always 0. Fewer shards come back
/// when the set has fewer nodes than requested shards.
std::vector<NodeId> BalancedShardSplits(const FlatAdsSet& set,
                                        uint32_t num_shards);

/// Writes `set` into `dir` (created if needed) as one v2 binary file per
/// shard plus the manifest; `split_begins` as from BalancedShardSplits
/// (sorted, unique, first element 0). The manifest is written last, so a
/// directory with a manifest is complete.
Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          const std::vector<NodeId>& split_begins);

/// Convenience overload: entry-balanced contiguous split into `num_shards`.
Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          uint32_t num_shards);

/// A sharded ADS set opened for serving. Shard arenas load lazily on first
/// access; at most `max_resident` stay in memory (least-recently-used
/// eviction), bounding resident memory at roughly the largest
/// `max_resident` shard arenas.
///
/// Loading is not thread-safe: concurrent Shard()/ViewOf() calls must be
/// externally serialized (the whole-graph sweeps in ads/queries.h do this
/// naturally — they walk shards sequentially and parallelize inside each).
/// Views and arena pointers stay valid until the owning shard is evicted,
/// i.e. until max_resident other shards have been touched.
class ShardedAdsSet {
 public:
  /// An empty set (no shards, no nodes); the state StatusOr needs to
  /// default-construct. Use Open to get a usable one.
  ShardedAdsSet() = default;

  /// Opens `path`, which may be the manifest file or its directory. `beta`
  /// is required for exponential/priority rank kinds, as in ParseAdsSet.
  static StatusOr<ShardedAdsSet> Open(
      const std::string& path,
      std::function<double(uint64_t)> beta = nullptr,
      uint32_t max_resident = 1);

  SketchFlavor flavor() const { return flavor_; }
  uint32_t k() const { return k_; }
  const RankAssignment& ranks() const { return ranks_; }
  size_t num_nodes() const { return num_nodes_; }
  size_t num_shards() const { return shards_.size(); }
  const std::vector<ShardInfo>& shards() const { return shards_; }
  uint64_t TotalEntries() const;

  /// Index of the shard owning node v (v must be < num_nodes()).
  uint32_t ShardOf(NodeId v) const;

  /// Loads shard `s` if not resident and returns its arena. Fails with
  /// IOError/Corruption if the shard file is missing, damaged, or
  /// inconsistent with the manifest.
  StatusOr<const FlatAdsSet*> Shard(uint32_t s) const;

  /// View of ADS(v), loading the owning shard on demand.
  StatusOr<AdsView> ViewOf(NodeId v) const;

  /// Number of shard arenas currently in memory (for tests/metrics).
  uint32_t NumResident() const;

 private:
  std::string dir_;
  SketchFlavor flavor_ = SketchFlavor::kBottomK;
  uint32_t k_ = 0;
  RankAssignment ranks_ = RankAssignment::Uniform(0);
  uint64_t num_nodes_ = 0;
  std::vector<ShardInfo> shards_;
  std::function<double(uint64_t)> beta_;
  uint32_t max_resident_ = 1;

  // Lazy-load cache: resident_[s] is null until shard s is first touched;
  // last_used_ drives LRU eviction once more than max_resident_ are live.
  mutable std::vector<std::unique_ptr<FlatAdsSet>> resident_;
  mutable std::vector<uint64_t> last_used_;
  mutable uint64_t tick_ = 0;
};

}  // namespace hipads

#endif  // HIPADS_ADS_SHARD_H_
