// Limited ("memory-less") ADS computation in the ANF / hyperANF style
// (paper Appendix B.1).
//
// Instead of materializing ADSs, each node keeps only the k-partition
// base-2 MinHash sketch (HyperLogLog registers) of its current
// d-neighborhood; one synchronous round of register merges advances d by
// one. ANF/hyperANF read a basic cardinality estimate off each node's
// registers after every round; per Appendix B.1, applying a HIP counter to
// the same register stream instead gives more accurate estimates "using
// the same implementations ... essentially without changing the
// computation".
//
// Granularity caveat: a register that grows by several element collisions
// within one round is a single observable update, so the HIP counter sees
// slightly fewer updates than a per-element stream would deliver; the
// bench (bench_anf) quantifies this against exact neighborhood functions.

#ifndef HIPADS_ADS_ANF_H_
#define HIPADS_ADS_ANF_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace hipads {

/// Result of a hyperANF-style run: per distance d (1-indexed rounds), the
/// estimated neighbourhood function N(d) = #ordered pairs within distance
/// d (including d = 0 self pairs omitted), plus per-node cardinalities.
struct AnfResult {
  /// neighbourhood_function[d] ~ sum_v |N_d(v)| for d = 0, 1, ... (d = 0
  /// row equals the number of nodes).
  std::vector<double> neighbourhood_function;
  /// Per-node estimates of |N_D(v)| at the final round D.
  std::vector<double> final_cardinalities;
  /// Number of rounds executed (= effective diameter reached).
  uint32_t rounds = 0;
};

/// Which estimator reads the registers after each round.
enum class AnfEstimator {
  kBasic,  // HyperLogLog bias-corrected estimate (classic hyperANF)
  kHip,    // running HIP counter driven by register updates (App. B.1)
};

/// Runs the synchronous register-merge computation on an unweighted graph
/// until no register changes (or max_rounds). k is the number of registers
/// per node (a k-partition base-2 sketch, 5-bit saturating).
AnfResult HyperAnf(const Graph& g, uint32_t k, uint64_t seed,
                   AnfEstimator estimator, uint32_t max_rounds = 0);

}  // namespace hipads

#endif  // HIPADS_ADS_ANF_H_
