// The All-Distances Sketch (ADS) data structure (paper Section 2).
//
// ADS(v) is a sample of the nodes reachable from v in which node u appears
// with probability ~ k / (Dijkstra rank of u w.r.t. v); each included node
// is stored with its distance from v. Equivalently, ADS(v) is the union of
// coordinated MinHash sketches of every neighborhood N_d(v).
//
// The container below holds entries sorted by increasing (distance, node
// id), which is the canonical scan order for HIP estimation, and supports
// extracting the MinHash sketch of N_d(v) for any d. Ties in distance are
// broken by node id (a fixed, rank-independent order, as Appendix B.3
// prescribes), making distances effectively unique as the paper's
// definitions assume; the Appendix-A variant that avoids tie breaking is
// exposed as a separate inclusion rule.

#ifndef HIPADS_ADS_ADS_H_
#define HIPADS_ADS_ADS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "sketch/minhash.h"
#include "sketch/rank.h"

namespace hipads {

/// One sketched node: (node id, its rank, distance from the ADS owner).
/// `part` is the permutation index for k-mins ADSs and the bucket id for
/// k-partition ADSs; always 0 for bottom-k.
struct AdsEntry {
  NodeId node;
  uint32_t part;
  double rank;
  double dist;
};

/// Ordering predicate: by (distance, node id, part). Node id breaks distance
/// ties, giving the canonical "unique distances" order of Section 2 /
/// Appendix B.3. The tie break must be independent of the random ranks:
/// a rank-dependent order would make the "closer than j" set depend on j's
/// own rank and bias the HIP conditioning on graphs with repeated distances.
inline bool AdsEntryCloser(const AdsEntry& a, const AdsEntry& b) {
  if (a.dist != b.dist) return a.dist < b.dist;
  if (a.node != b.node) return a.node < b.node;
  return a.part < b.part;
}

/// Non-owning read view of one node's ADS: a span of entries in canonical
/// (distance, node id) order. This is the common query surface shared by the
/// owning per-node container (Ads) and the flat CSR arena (FlatAdsSet); all
/// estimators consume it, so sketches never have to be copied out of
/// whichever storage holds them.
class AdsView {
 public:
  AdsView() = default;
  explicit AdsView(std::span<const AdsEntry> entries) : entries_(entries) {}

  std::span<const AdsEntry> entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if `node` appears in the sketch (any part). Linear: entries are
  /// ordered by (dist, node), which admits no binary search on node alone.
  /// Build an AdsNodeIndex over the view when point lookups are hot.
  bool Contains(NodeId node) const;

  /// Distance of `node`, or -1 if absent. Linear, like Contains (see
  /// AdsNodeIndex for the O(log s) version).
  double DistanceOf(NodeId node) const;

  /// Number of entries with dist <= d. Binary search over the sorted dists.
  size_t CountWithin(double d) const;

  /// The bottom-k MinHash sketch of N_d(owner) contained in this ADS
  /// (Section 2: "an ADS contains a MinHash sketch of every neighborhood").
  /// Only valid for bottom-k flavor ADSs.
  BottomKSketch BottomKAt(double d, uint32_t k, double sup = 1.0) const;

  /// k-mins MinHash sketch of N_d(owner); valid for k-mins flavor.
  KMinsSketch KMinsAt(double d, uint32_t k, double sup = 1.0) const;

  /// k-partition MinHash sketch of N_d(owner); valid for k-partition flavor.
  KPartitionSketch KPartitionAt(double d, uint32_t k, double sup = 1.0) const;

 private:
  std::span<const AdsEntry> entries_;
};

/// Point-lookup index over one ADS: the entry positions sorted by node id,
/// making Contains/DistanceOf O(log s) binary searches instead of the
/// linear scans AdsView has to do (the canonical (dist, node) order admits
/// no direct search by node). Build one per sketch when point lookups are
/// hot — similarity serving, the CLI --lookup path — and keep it beside
/// the view it indexes; O(s log s) to build, no entry copies. The indexed
/// view's storage must stay resident while the index is used.
class AdsNodeIndex {
 public:
  AdsNodeIndex() = default;
  explicit AdsNodeIndex(AdsView view);

  /// True if `node` appears in the sketch (any part).
  bool Contains(NodeId node) const;

  /// Distance of `node`, or -1 if absent. With multiple entries per node
  /// (k-mins flavors) returns the smallest distance, like the linear
  /// AdsView::DistanceOf.
  double DistanceOf(NodeId node) const;

  size_t size() const { return by_node_.size(); }

 private:
  AdsView view_;
  std::vector<uint32_t> by_node_;  // entry positions sorted by (node, pos)
};

/// The ADS of a single node (owning container).
class Ads {
 public:
  Ads() = default;

  /// Wraps entries, sorting them into canonical order.
  explicit Ads(std::vector<AdsEntry> entries);

  const std::vector<AdsEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Read view of this ADS (the interface all estimators consume).
  AdsView view() const { return AdsView(entries_); }

  /// Appends an entry that is known to follow all current entries in
  /// canonical order (builders emit entries in scan order).
  void Append(const AdsEntry& e) { entries_.push_back(e); }

  /// True if `node` appears in the sketch (any part).
  bool Contains(NodeId node) const { return view().Contains(node); }

  /// Distance of `node`, or -1 if absent.
  double DistanceOf(NodeId node) const { return view().DistanceOf(node); }

  /// Number of entries with dist <= d (binary search).
  size_t CountWithin(double d) const { return view().CountWithin(d); }

  /// See AdsView::BottomKAt.
  BottomKSketch BottomKAt(double d, uint32_t k, double sup = 1.0) const {
    return view().BottomKAt(d, k, sup);
  }

  /// See AdsView::KMinsAt.
  KMinsSketch KMinsAt(double d, uint32_t k, double sup = 1.0) const {
    return view().KMinsAt(d, k, sup);
  }

  /// See AdsView::KPartitionAt.
  KPartitionSketch KPartitionAt(double d, uint32_t k, double sup = 1.0) const {
    return view().KPartitionAt(d, k, sup);
  }

  /// Re-derives the canonical bottom-k ADS content from any superset of
  /// candidate entries: scans in (dist, rank) order keeping an entry iff its
  /// rank is below the kth smallest kept rank so far. This is simultaneously
  /// the ADS membership rule (Eq. 4), the LocalUpdates clean-up pass, and
  /// the validator used in tests. Entries for the same node must be unique.
  static Ads CanonicalBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                              double sup = 1.0);

  /// Appendix-A variant without tie breaking: an entry is kept iff fewer
  /// than k other nodes within its distance have a smaller rank (so at
  /// most k entries per distinct distance — the k smallest). HIP weights
  /// for this variant come from ComputeModifiedHipWeights.
  static Ads ModifiedBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                             double sup = 1.0);

 private:
  std::vector<AdsEntry> entries_;  // canonical (dist, rank) order
};

/// ADSs of all nodes of one graph, plus the parameters that define them.
struct AdsSet {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankAssignment ranks = RankAssignment::Uniform(0);
  std::vector<Ads> ads;  // indexed by node id

  size_t num_nodes() const { return ads.size(); }
  const Ads& of(NodeId v) const { return ads[v]; }
  /// Total number of entries across all nodes.
  uint64_t TotalEntries() const;
};

/// Expected bottom-k ADS size k + k(H_n - H_k) for n reachable nodes
/// (Lemma 2.2).
double ExpectedBottomKAdsSize(uint32_t k, uint64_t n);

/// Reserves each per-node builder output vector at the Lemma 2.2 expected
/// final ADS size for `flavor` (plus one margin entry), cutting the
/// reallocation churn of growing n vectors entry by entry. Vectors still
/// grow past the reservation when a node's sketch lands above expectation.
void ReserveExpectedAdsSize(std::vector<std::vector<AdsEntry>>& out,
                            uint32_t k, SketchFlavor flavor);

/// Expected k-partition ADS size ~ k (H_{n/k}) ~ k ln(n/k) (Lemma 2.2).
double ExpectedKPartitionAdsSize(uint32_t k, uint64_t n);

}  // namespace hipads

#endif  // HIPADS_ADS_ADS_H_
