#include "ads/anf.h"

#include <cassert>
#include <cmath>

#include "stream/hll.h"
#include "util/hash.h"

namespace hipads {

namespace {

constexpr uint32_t kRegisterCap = 31;  // 5-bit registers

// Register state of one node plus its HIP accumulator.
struct NodeState {
  std::vector<uint8_t> regs;
  double probability_sum;  // sum over non-saturated regs of 2^-M
  double hip_count = 0.0;
};

double BasicEstimate(const std::vector<uint8_t>& regs) {
  uint32_t k = static_cast<uint32_t>(regs.size());
  double sum = 0.0;
  uint32_t zeros = 0;
  for (uint8_t m : regs) {
    sum += std::ldexp(1.0, -static_cast<int>(m));
    if (m == 0) ++zeros;
  }
  double kk = static_cast<double>(k);
  double raw = HyperLogLog::Alpha(k) * kk * kk / sum;
  if (raw <= 2.5 * kk && zeros != 0) {
    return kk * std::log(kk / static_cast<double>(zeros));
  }
  return raw;
}

// Applies one observed register update to the HIP accumulator: the update
// probability, conditioned on the pre-update registers, is
// (1/k) sum over non-saturated registers of 2^-M (Eq. 8).
void HipAbsorb(NodeState& s, uint32_t reg, uint8_t new_value) {
  double k = static_cast<double>(s.regs.size());
  double tau = s.probability_sum / k;
  assert(tau > 0.0);
  s.hip_count += 1.0 / tau;
  s.probability_sum -= std::ldexp(1.0, -static_cast<int>(s.regs[reg]));
  if (new_value < kRegisterCap) {
    s.probability_sum += std::ldexp(1.0, -static_cast<int>(new_value));
  }
  s.regs[reg] = new_value;
}

}  // namespace

AnfResult HyperAnf(const Graph& g, uint32_t k, uint64_t seed,
                   AnfEstimator estimator, uint32_t max_rounds) {
  NodeId n = g.num_nodes();
  Graph gt = g.Transpose();
  assert(g.IsUnitWeight() && "HyperAnf requires an unweighted graph");

  // Initialize every node's sketch with itself.
  std::vector<NodeState> state(n);
  for (NodeId v = 0; v < n; ++v) {
    state[v].regs.assign(k, 0);
    state[v].probability_sum = static_cast<double>(k);
    uint32_t bucket = BucketHash(seed, v, k);
    double r = UnitHash(seed, v);
    uint32_t h = static_cast<uint32_t>(std::ceil(-std::log2(r)));
    if (h < 1) h = 1;
    if (h > kRegisterCap) h = kRegisterCap;
    HipAbsorb(state[v], bucket, static_cast<uint8_t>(h));
  }

  AnfResult result;
  auto read_all = [&]() {
    double total = 0.0;
    for (NodeId v = 0; v < n; ++v) {
      total += estimator == AnfEstimator::kHip ? state[v].hip_count
                                               : BasicEstimate(state[v].regs);
    }
    return total;
  };
  result.neighbourhood_function.push_back(read_all());

  // Synchronous rounds: next[v] = max over v's out-neighbors' registers.
  std::vector<std::vector<uint8_t>> snapshot(n);
  uint32_t round = 0;
  while (max_rounds == 0 || round < max_rounds) {
    ++round;
    bool changed = false;
    for (NodeId v = 0; v < n; ++v) snapshot[v] = state[v].regs;
    for (NodeId v = 0; v < n; ++v) {
      for (const Arc& a : g.OutArcs(v)) {
        const std::vector<uint8_t>& other = snapshot[a.head];
        for (uint32_t i = 0; i < k; ++i) {
          if (other[i] > state[v].regs[i]) {
            HipAbsorb(state[v], i, other[i]);
            changed = true;
          }
        }
      }
    }
    if (!changed) {
      --round;  // the last round did nothing; don't count it
      break;
    }
    result.neighbourhood_function.push_back(read_all());
  }
  result.rounds = round;
  result.final_cardinalities.resize(n);
  for (NodeId v = 0; v < n; ++v) {
    result.final_cardinalities[v] = estimator == AnfEstimator::kHip
                                        ? state[v].hip_count
                                        : BasicEstimate(state[v].regs);
  }
  (void)gt;
  return result;
}

}  // namespace hipads
