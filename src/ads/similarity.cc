#include "ads/similarity.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "sketch/cardinality.h"
#include "sketch/minhash.h"

namespace hipads {

namespace {

// (rank, node) pairs of entries within distance d, sorted by (rank, node).
// Node ids ride along so the merges below can tell apart distinct nodes
// whose ranks collide — routine under base-b discretization (DiscretizeRank
// maps whole rank intervals to one power of 1/b), where deduplicating by
// rank value alone would conflate different elements.
std::vector<std::pair<double, NodeId>> RankedWithin(AdsView ads, double d) {
  std::vector<std::pair<double, NodeId>> out;
  for (const AdsEntry& e : ads.entries()) {
    if (e.dist > d) break;
    out.emplace_back(e.rank, e.node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double JaccardSimilarity(AdsView u, AdsView v, double d, uint32_t k,
                         double sup) {
  auto ru = RankedWithin(u, d);
  auto rv = RankedWithin(v, d);
  if (ru.empty() && rv.empty()) return 0.0;
  // Merge to the k smallest distinct samples of the union, ordered by
  // (rank, node id) so rank ties break identically on both sides; count
  // how many appear in both neighborhoods' sketches. An element of the
  // union sample is in the intersection iff the same node appears in both
  // lists (coordination guarantees it carries the same rank in both, so
  // equal (rank, node) pairs are the same element).
  size_t i = 0, j = 0;
  uint32_t taken = 0, shared = 0;
  while (taken < k && (i < ru.size() || j < rv.size())) {
    bool have_u = i < ru.size(), have_v = j < rv.size();
    if (have_u && have_v && ru[i] == rv[j]) {
      ++shared;
      ++i;
      ++j;
    } else if (!have_v || (have_u && ru[i] < rv[j])) {
      ++i;
    } else {
      ++j;
    }
    ++taken;
  }
  (void)sup;
  return taken == 0 ? 0.0 : static_cast<double>(shared) / taken;
}

double UnionCardinality(AdsView u, AdsView v, double d, uint32_t k,
                        double sup) {
  // Deduplicate the merged sample by node id: a node present in both
  // sketches contributes once (its (rank, node) pair is identical on both
  // sides by coordination), while distinct nodes with colliding ranks —
  // the base-b case — stay distinct samples.
  auto ru = RankedWithin(u, d);
  auto rv = RankedWithin(v, d);
  std::vector<std::pair<double, NodeId>> merged_pairs;
  merged_pairs.reserve(ru.size() + rv.size());
  std::merge(ru.begin(), ru.end(), rv.begin(), rv.end(),
             std::back_inserter(merged_pairs));
  merged_pairs.erase(std::unique(merged_pairs.begin(), merged_pairs.end()),
                     merged_pairs.end());
  BottomKSketch merged(k, sup);
  for (const auto& pair : merged_pairs) merged.Update(pair.first);
  return BottomKBasicEstimate(merged);
}

double IntersectionCardinality(AdsView u, AdsView v, double d,
                               uint32_t k, double sup) {
  return JaccardSimilarity(u, v, d, k, sup) *
         UnionCardinality(u, v, d, k, sup);
}

double ReachabilityJaccard(AdsView u, AdsView v, uint32_t k,
                           double sup) {
  return JaccardSimilarity(u, v, std::numeric_limits<double>::infinity(), k,
                           sup);
}

}  // namespace hipads
