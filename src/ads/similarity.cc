#include "ads/similarity.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "sketch/cardinality.h"
#include "sketch/minhash.h"

namespace hipads {

namespace {

// (rank, node) pairs of entries within distance d, sorted by rank.
std::vector<std::pair<double, NodeId>> RankedWithin(const Ads& ads,
                                                    double d) {
  std::vector<std::pair<double, NodeId>> out;
  for (const AdsEntry& e : ads.entries()) {
    if (e.dist > d) break;
    out.emplace_back(e.rank, e.node);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

double JaccardSimilarity(const Ads& u, const Ads& v, double d, uint32_t k,
                         double sup) {
  auto ru = RankedWithin(u, d);
  auto rv = RankedWithin(v, d);
  if (ru.empty() && rv.empty()) return 0.0;
  // Merge to the k smallest distinct samples of the union; count how many
  // appear in both neighborhoods' sketches. An element of the union sample
  // is in the intersection iff it appears in both lists (coordination
  // guarantees a shared element has the same rank in both).
  size_t i = 0, j = 0;
  uint32_t taken = 0, shared = 0;
  while (taken < k && (i < ru.size() || j < rv.size())) {
    double next_u = i < ru.size() ? ru[i].first
                                  : std::numeric_limits<double>::infinity();
    double next_v = j < rv.size() ? rv[j].first
                                  : std::numeric_limits<double>::infinity();
    if (next_u == next_v) {
      ++shared;
      ++i;
      ++j;
    } else if (next_u < next_v) {
      ++i;
    } else {
      ++j;
    }
    ++taken;
  }
  (void)sup;
  return taken == 0 ? 0.0 : static_cast<double>(shared) / taken;
}

double UnionCardinality(const Ads& u, const Ads& v, double d, uint32_t k,
                        double sup) {
  BottomKSketch merged(k, sup);
  for (const AdsEntry& e : u.entries()) {
    if (e.dist > d) break;
    merged.Update(e.rank);
  }
  for (const AdsEntry& e : v.entries()) {
    if (e.dist > d) break;
    // Shared nodes carry identical ranks; skip exact duplicates so the
    // merged sketch samples distinct elements.
    if (!merged.Contains(e.rank)) merged.Update(e.rank);
  }
  return BottomKBasicEstimate(merged);
}

double IntersectionCardinality(const Ads& u, const Ads& v, double d,
                               uint32_t k, double sup) {
  return JaccardSimilarity(u, v, d, k, sup) *
         UnionCardinality(u, v, d, k, sup);
}

double ReachabilityJaccard(const Ads& u, const Ads& v, uint32_t k,
                           double sup) {
  return JaccardSimilarity(u, v, std::numeric_limits<double>::infinity(), k,
                           sup);
}

}  // namespace hipads
