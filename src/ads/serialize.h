// Persistence for ADS sets: sketch once, query forever.
//
// The sketches of a billion-edge graph take hours to build but milliseconds
// to query; any real deployment computes them offline and serves queries
// from a stored copy. This module defines a versioned, line-oriented text
// format (portable, diffable, compresses well) for an AdsSet together with
// the rank-assignment parameters needed to recompute HIP probabilities at
// load time.
//
// Uniform and base-b rank assignments round-trip completely (they are pure
// functions of the stored seed). Exponential (node-weighted) assignments
// depend on a user-provided beta function that cannot be serialized; pass
// it again at load time. Permutation assignments store the permutation.

#ifndef HIPADS_ADS_SERIALIZE_H_
#define HIPADS_ADS_SERIALIZE_H_

#include <functional>
#include <string>

#include "ads/ads.h"
#include "ads/flat_ads.h"
#include "util/status.h"

namespace hipads {

/// Serializes `set` into the hipads-ads-v1 text format. Both storage
/// layouts emit byte-identical output for the same sketches, so files are
/// freely interchangeable between the two loaders.
std::string SerializeAdsSet(const AdsSet& set);
std::string SerializeAdsSet(const FlatAdsSet& set);

/// Writes SerializeAdsSet(set) to `path`.
Status WriteAdsSetFile(const AdsSet& set, const std::string& path);
Status WriteAdsSetFile(const FlatAdsSet& set, const std::string& path);

/// Parses the hipads-ads-v1 format. For sets built with exponential ranks,
/// `beta` must be the same function used at build time (checked against
/// the stored entry ranks only superficially; callers own consistency).
StatusOr<AdsSet> ParseAdsSet(
    const std::string& text,
    std::function<double(uint64_t)> beta = nullptr);

/// Parses the hipads-ads-v1 format directly into the flat CSR arena: the
/// serve-path loader (two big allocations instead of one per node).
StatusOr<FlatAdsSet> ParseFlatAdsSet(
    const std::string& text,
    std::function<double(uint64_t)> beta = nullptr);

/// Reads an ADS-set file written by WriteAdsSetFile.
StatusOr<AdsSet> ReadAdsSetFile(
    const std::string& path,
    std::function<double(uint64_t)> beta = nullptr);

/// Reads an ADS-set file directly into a FlatAdsSet.
StatusOr<FlatAdsSet> ReadFlatAdsSetFile(
    const std::string& path,
    std::function<double(uint64_t)> beta = nullptr);

}  // namespace hipads

#endif  // HIPADS_ADS_SERIALIZE_H_
