// Persistence for ADS sets: sketch once, query forever.
//
// The sketches of a billion-edge graph take hours to build but milliseconds
// to query; any real deployment computes them offline and serves queries
// from a stored copy. Two on-disk formats are supported:
//
//   * hipads-ads-v1 — versioned, line-oriented text (portable, diffable,
//     compresses well); the compatibility anchor.
//   * hipads-ads-v2 — binary: a fixed little-endian header carrying the
//     sketch parameters and per-section byte lengths, followed by the raw
//     offsets[] + AdsEntry[] CSR arena and guarded by a checksum. Loading
//     is two memcpys plus validation — orders of magnitude faster than
//     re-tokenizing %.17g doubles, which is what the serving path wants.
//
// Readers auto-detect the format from the leading magic, so callers never
// have to know which one a file uses. Both formats round-trip the sketches
// bit-identically.
//
// Uniform and base-b rank assignments round-trip completely (they are pure
// functions of the stored seed). Exponential (node-weighted) assignments
// depend on a user-provided beta function that cannot be serialized; pass
// it again at load time. Permutation assignments store the permutation.

#ifndef HIPADS_ADS_SERIALIZE_H_
#define HIPADS_ADS_SERIALIZE_H_

#include <functional>
#include <iosfwd>
#include <string>

#include "ads/ads.h"
#include "ads/flat_ads.h"
#include "util/status.h"

namespace hipads {

/// On-disk format selector for the writers. Readers auto-detect.
enum class AdsFileFormat { kTextV1, kBinaryV2 };

/// Serializes `set` into the hipads-ads-v1 text format. Both storage
/// layouts emit byte-identical output for the same sketches, so files are
/// freely interchangeable between the two loaders.
std::string SerializeAdsSet(const AdsSet& set);
std::string SerializeAdsSet(const FlatAdsSet& set);

/// Serializes `set` into the hipads-ads-v2 binary format. Both storage
/// layouts emit byte-identical output for the same sketches.
std::string SerializeAdsSetBinary(const AdsSet& set);
std::string SerializeAdsSetBinary(const FlatAdsSet& set);

/// Writes `set` to `path` in the requested format (v1 text by default,
/// matching the historical behavior of this API).
Status WriteAdsSetFile(const AdsSet& set, const std::string& path,
                       AdsFileFormat format = AdsFileFormat::kTextV1);
Status WriteAdsSetFile(const FlatAdsSet& set, const std::string& path,
                       AdsFileFormat format = AdsFileFormat::kTextV1);

/// True iff `data` begins with the hipads-ads-v2 binary magic.
bool IsBinaryAdsData(const std::string& data);

/// Parses the hipads-ads-v1 format. For sets built with exponential ranks,
/// `beta` must be the same function used at build time (checked against
/// the stored entry ranks only superficially; callers own consistency).
/// Node blocks must appear exactly once each, in increasing node-id order;
/// anything after the last block is rejected as corruption.
StatusOr<AdsSet> ParseAdsSet(
    const std::string& text,
    std::function<double(uint64_t)> beta = nullptr);

/// Parses the hipads-ads-v1 format directly into the flat CSR arena: the
/// serve-path loader (two big allocations instead of one per node).
StatusOr<FlatAdsSet> ParseFlatAdsSet(
    const std::string& text,
    std::function<double(uint64_t)> beta = nullptr);

/// Parses the hipads-ads-v2 binary format into the flat CSR arena. All
/// structural damage (truncation, bad magic, bad checksum, inconsistent
/// section lengths, invalid offsets or entries) returns Corruption.
StatusOr<FlatAdsSet> ParseFlatAdsSetBinary(
    const std::string& data,
    std::function<double(uint64_t)> beta = nullptr);

// ---------------------------------------------------------------------------
// Zero-copy v2 access (shared by the copying parser and the mmap backend)
// ---------------------------------------------------------------------------

/// Fixed byte size of the hipads-ads-v2 header.
inline constexpr size_t kAdsBinaryHeaderBytes = 88;

/// Fixed byte size of the optional HIP section's header.
inline constexpr size_t kAdsHipSectionHeaderBytes = 32;

/// Exact byte size of a v2 file holding `num_nodes` nodes and `num_entries`
/// entries, WITHOUT the optional HIP section. Manifest-driven integrity
/// checks (sharded serving) use this to detect missing or truncated shard
/// files without opening them; a file with the HIP section is exactly
/// AdsHipSectionBytes(num_entries) longer — no other size is valid.
uint64_t AdsBinaryFileSize(uint64_t num_nodes, uint64_t num_entries);

/// Byte size of the optional HIP section for `num_entries` entries: a
/// 32-byte header ("hipadshw" magic, version, entry count, FNV-1a checksum
/// of the section) followed by tau[num_entries] then weight[num_entries]
/// doubles — +16 bytes per entry, aligned with the entry arena (see hip.h
/// for the k-mins zero-slot convention). The main v2 checksum does NOT
/// cover the section (so base files are bit-identical with or without it);
/// the section carries its own.
uint64_t AdsHipSectionBytes(uint64_t num_entries);

/// Non-owning view of a fully validated hipads-ads-v2 image. `offsets` and
/// `entries` alias the caller's buffer, which must be 8-byte aligned (heap
/// buffers and mmap regions both are) and outlive the view.
struct AdsBinaryView {
  SketchFlavor flavor = SketchFlavor::kBottomK;
  RankKind rank_kind = RankKind::kUniform;
  uint32_t k = 0;
  uint64_t seed = 0;
  double base = 0.0;  // base-b ranks only, 0 otherwise
  uint64_t num_nodes = 0;
  uint64_t num_entries = 0;
  const uint64_t* offsets = nullptr;  // num_nodes + 1 values
  const AdsEntry* entries = nullptr;  // num_entries values
  /// True iff every node block is already in canonical (dist, node, part)
  /// order — always the case for writer-produced files. A zero-copy
  /// consumer cannot re-sort, so it must fall back to the copying loader
  /// when this is false.
  bool canonical_order = false;
  /// Precomputed HIP weights when the file carries the optional HIP
  /// section (validated: magic, count, checksum, per-entry integrity);
  /// null otherwise. Aligned with `entries`.
  const double* hip_tau = nullptr;
  const double* hip_weight = nullptr;

  bool has_hip() const { return hip_tau != nullptr; }
};

/// Validates a v2 image in place — header, whole-file checksum, section
/// structure, offsets monotonicity and entry sanity — without copying a
/// byte of the payload. This is the open path of the mmap backend; the
/// copying ParseFlatAdsSetBinary runs the same validation and then copies.
StatusOr<AdsBinaryView> ValidateAdsSetBinary(const char* data, size_t size);

/// Reconstructs a RankAssignment from the stored (kind, seed, base) triple.
/// Weighted kinds (exponential/priority) require `beta`; permutation ranks
/// are not round-trippable and are rejected. Shared by the v1/v2 readers,
/// the shard manifest loader and the mmap backend.
Status RanksFromStoredParams(RankKind kind, uint64_t seed, double base,
                             std::function<double(uint64_t)> beta,
                             RankAssignment* out);

/// Parses either format (auto-detected from the magic) into the flat
/// arena.
StatusOr<FlatAdsSet> ParseFlatAdsSetAny(
    const std::string& data,
    std::function<double(uint64_t)> beta = nullptr);

/// Reads an ADS-set file written by WriteAdsSetFile (either format).
StatusOr<AdsSet> ReadAdsSetFile(
    const std::string& path,
    std::function<double(uint64_t)> beta = nullptr);

/// Reads an ADS-set file directly into a FlatAdsSet (either format).
StatusOr<FlatAdsSet> ReadFlatAdsSetFile(
    const std::string& path,
    std::function<double(uint64_t)> beta = nullptr);

// ---------------------------------------------------------------------------
// Shared sketch-parameter header lines (reused by the shard manifest)
// ---------------------------------------------------------------------------

/// The "flavor/k/ranks/nodes" header lines of the v1 text format (without
/// the magic line). The shard manifest embeds the same block.
std::string SerializeAdsParams(SketchFlavor flavor, uint32_t k,
                               const RankAssignment& ranks,
                               uint64_t num_nodes);

/// Parses the header lines written by SerializeAdsParams from `in`
/// (positioned just after the magic line). `beta` is required for
/// exponential/priority rank kinds, as in ParseAdsSet.
Status ParseAdsParams(std::istream& in,
                      std::function<double(uint64_t)> beta,
                      SketchFlavor* flavor, uint32_t* k,
                      RankAssignment* ranks, uint64_t* num_nodes);

}  // namespace hipads

#endif  // HIPADS_ADS_SERIALIZE_H_
