#include "ads/hip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hipads {

namespace {

// Inclusion probability of a node whose rank must fall below `tau` in rank
// space. For uniform and base-b ranks P(r < tau) = tau exactly (tau is
// always an attainable rank value or the supremum 1); for exponential ranks
// with rate beta, P(Exp(beta) < tau) = 1 - exp(-beta tau); for priority
// (Sequential Poisson) ranks, P(U/beta < tau) = min(1, beta tau).
double InclusionProbability(double tau, double beta, RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
    case RankKind::kBaseB:
      return std::min(tau, 1.0);
    case RankKind::kExponential:
      if (std::isinf(tau)) return 1.0;
      return -std::expm1(-beta * tau);
    case RankKind::kPriority:
      if (std::isinf(tau)) return 1.0;
      return std::min(1.0, beta * tau);
    case RankKind::kPermutation:
      assert(false && "use PermutationCardinalityEstimator");
      return 1.0;
  }
  return 1.0;
}

// The kernels below are templates over the entry layout: `E` exposes the
// canonical-order entry sequence as size()/node(i)/part(i)/rank(i)/dist(i),
// backed either by an AdsEntry array (AoS — AdsView over an Ads or a
// FlatAdsSet slice) or by per-field arrays (SoA — SoaAdsArena slice). Both
// instantiations execute the identical arithmetic in the identical order,
// so the adjusted weights agree bitwise across layouts.
struct AosEntries {
  std::span<const AdsEntry> e;
  size_t size() const { return e.size(); }
  NodeId node(size_t i) const { return e[i].node; }
  uint32_t part(size_t i) const { return e[i].part; }
  double rank(size_t i) const { return e[i].rank; }
  double dist(size_t i) const { return e[i].dist; }
};

struct SoaEntries {
  SoaAdsView v;
  size_t size() const { return v.size; }
  NodeId node(size_t i) const { return v.node[i]; }
  uint32_t part(size_t i) const { return v.part[i]; }
  double rank(size_t i) const { return v.rank[i]; }
  double dist(size_t i) const { return v.dist[i]; }
};

template <typename E>
std::vector<HipEntry> BottomKHip(const E& ads, uint32_t k,
                                 const RankAssignment& ranks) {
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  BottomKSketch closer(k, ranks.sup());  // ranks of nodes scanned so far
  for (size_t i = 0; i < ads.size(); ++i) {
    double tau = closer.Threshold();
    double p = InclusionProbability(tau, ranks.beta(ads.node(i)),
                                    ranks.kind());
    assert(p > 0.0);
    result.push_back(HipEntry{ads.node(i), ads.dist(i), p, 1.0 / p});
    closer.Update(ads.rank(i));
  }
  return result;
}

template <typename E>
std::vector<HipEntry> KMinsHip(const E& ads, uint32_t k,
                               const RankAssignment& ranks) {
  // Group same-node entries (one per permutation) so each node gets a single
  // adjusted weight; nodes are processed in order of their first (lowest
  // rank) entry, which fixes the tie-broken "closer" order.
  struct Group {
    NodeId node;
    double dist;
    std::vector<size_t> members;  // entry indices
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < ads.size(); ++i) {
    int64_t gi = -1;
    for (size_t gidx = groups.size(); gidx-- > 0;) {
      // Same-node entries share a distance, so only groups at this distance
      // (the tail of the list) can match.
      if (groups[gidx].dist != ads.dist(i)) break;
      if (groups[gidx].node == ads.node(i)) {
        gi = static_cast<int64_t>(gidx);
        break;
      }
    }
    if (gi < 0) {
      groups.push_back(Group{ads.node(i), ads.dist(i), {}});
      gi = static_cast<int64_t>(groups.size()) - 1;
    }
    groups[static_cast<size_t>(gi)].members.push_back(i);
  }

  std::vector<HipEntry> result;
  result.reserve(groups.size());
  std::vector<double> mins(k, ranks.sup());
  for (const Group& group : groups) {
    // Eq. (7): the node enters the ADS iff it beats the running minimum in
    // at least one permutation. With no closer node in permutation h the
    // miss factor (1 - P(beat)) is 0, so tau = 1.
    double beta = ranks.beta(group.node);
    double prod = 1.0;
    for (uint32_t h = 0; h < k; ++h) {
      prod *= 1.0 - InclusionProbability(mins[h], beta, ranks.kind());
    }
    double tau = 1.0 - prod;
    assert(tau > 0.0);
    result.push_back(HipEntry{group.node, group.dist, tau, 1.0 / tau});
    for (size_t idx : group.members) {
      mins[ads.part(idx)] = std::min(mins[ads.part(idx)], ads.rank(idx));
    }
  }
  return result;
}

template <typename E>
std::vector<HipEntry> KPartitionHip(const E& ads, uint32_t k,
                                    const RankAssignment& ranks) {
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  const bool weighted = ranks.kind() == RankKind::kExponential ||
                        ranks.kind() == RankKind::kPriority;
  // Eq. (8): tau = (1/k) sum_h P(rank beats bucket-h minimum); an empty
  // bucket is beaten with probability 1. For unweighted ranks P(beat m) =
  // min(m, 1) is node-independent, so we maintain the sum incrementally;
  // weighted ranks recompute the per-node sum.
  std::vector<double> mins(k, ranks.sup());
  double uniform_sum = static_cast<double>(k);
  for (size_t i = 0; i < ads.size(); ++i) {
    double tau;
    if (weighted) {
      double beta = ranks.beta(ads.node(i));
      double s = 0.0;
      for (uint32_t h = 0; h < k; ++h) {
        s += InclusionProbability(mins[h], beta, ranks.kind());
      }
      tau = s / static_cast<double>(k);
    } else {
      tau = uniform_sum / static_cast<double>(k);
    }
    assert(tau > 0.0);
    result.push_back(HipEntry{ads.node(i), ads.dist(i), tau, 1.0 / tau});
    if (ads.rank(i) < mins[ads.part(i)]) {
      if (!weighted) {
        uniform_sum -= std::min(mins[ads.part(i)], 1.0) - ads.rank(i);
      }
      mins[ads.part(i)] = ads.rank(i);
    }
  }
  return result;
}

template <typename E>
std::vector<HipEntry> ComputeHipWeightsT(const E& ads, uint32_t k,
                                         SketchFlavor flavor,
                                         const RankAssignment& ranks) {
  assert(ranks.kind() != RankKind::kPermutation);
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return BottomKHip(ads, k, ranks);
    case SketchFlavor::kKMins:
      return KMinsHip(ads, k, ranks);
    case SketchFlavor::kKPartition:
      return KPartitionHip(ads, k, ranks);
  }
  return {};
}

}  // namespace

std::vector<HipEntry> ComputeHipWeights(AdsView ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks) {
  return ComputeHipWeightsT(AosEntries{ads.entries()}, k, flavor, ranks);
}

std::vector<HipEntry> ComputeHipWeights(const SoaAdsView& ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks) {
  return ComputeHipWeightsT(SoaEntries{ads}, k, flavor, ranks);
}

std::vector<HipEntry> ComputeModifiedHipWeights(AdsView ads, uint32_t k,
                                                double sup) {
  // Scan distance groups, maintaining the bottom-k sketch of all member
  // ranks within the current ball. The threshold for every member of a
  // group is the kth smallest rank of the ball including the group itself
  // (which equals the (k-1)th smallest among the member's peers, the
  // Appendix-A conditioning).
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  BottomKSketch ball(k, sup);
  const auto entries = ads.entries();
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].dist == entries[i].dist) ++j;
    for (size_t t = i; t < j; ++t) ball.Update(entries[t].rank);
    double tau = ball.Threshold();
    for (size_t t = i; t < j; ++t) {
      // Members holding exactly the kth smallest rank of their ball are
      // retained in the sketch but not "sampled": weight 0.
      bool sampled = entries[t].rank < tau;
      result.push_back(HipEntry{entries[t].node, entries[t].dist,
                                std::min(tau, 1.0),
                                sampled ? 1.0 / std::min(tau, 1.0) : 0.0});
    }
    i = j;
  }
  return result;
}

}  // namespace hipads
