#include "ads/hip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace hipads {

namespace {

// Inclusion probability of a node whose rank must fall below `tau` in rank
// space. For uniform and base-b ranks P(r < tau) = tau exactly (tau is
// always an attainable rank value or the supremum 1); for exponential ranks
// with rate beta, P(Exp(beta) < tau) = 1 - exp(-beta tau); for priority
// (Sequential Poisson) ranks, P(U/beta < tau) = min(1, beta tau).
double InclusionProbability(double tau, double beta, RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
    case RankKind::kBaseB:
      return std::min(tau, 1.0);
    case RankKind::kExponential:
      if (std::isinf(tau)) return 1.0;
      return -std::expm1(-beta * tau);
    case RankKind::kPriority:
      if (std::isinf(tau)) return 1.0;
      return std::min(1.0, beta * tau);
    case RankKind::kPermutation:
      assert(false && "use PermutationCardinalityEstimator");
      return 1.0;
  }
  return 1.0;
}

std::vector<HipEntry> BottomKHip(AdsView ads, uint32_t k,
                                 const RankAssignment& ranks) {
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  BottomKSketch closer(k, ranks.sup());  // ranks of nodes scanned so far
  for (const AdsEntry& e : ads.entries()) {
    double tau = closer.Threshold();
    double p = InclusionProbability(tau, ranks.beta(e.node), ranks.kind());
    assert(p > 0.0);
    result.push_back(HipEntry{e.node, e.dist, p, 1.0 / p});
    closer.Update(e.rank);
  }
  return result;
}

std::vector<HipEntry> KMinsHip(AdsView ads, uint32_t k,
                               const RankAssignment& ranks) {
  // Group same-node entries (one per permutation) so each node gets a single
  // adjusted weight; nodes are processed in order of their first (lowest
  // rank) entry, which fixes the tie-broken "closer" order.
  const auto entries = ads.entries();
  struct Group {
    NodeId node;
    double dist;
    std::vector<size_t> members;  // entry indices
  };
  std::vector<Group> groups;
  for (size_t i = 0; i < entries.size(); ++i) {
    int64_t gi = -1;
    for (size_t gidx = groups.size(); gidx-- > 0;) {
      // Same-node entries share a distance, so only groups at this distance
      // (the tail of the list) can match.
      if (groups[gidx].dist != entries[i].dist) break;
      if (groups[gidx].node == entries[i].node) {
        gi = static_cast<int64_t>(gidx);
        break;
      }
    }
    if (gi < 0) {
      groups.push_back(Group{entries[i].node, entries[i].dist, {}});
      gi = static_cast<int64_t>(groups.size()) - 1;
    }
    groups[static_cast<size_t>(gi)].members.push_back(i);
  }

  std::vector<HipEntry> result;
  result.reserve(groups.size());
  std::vector<double> mins(k, ranks.sup());
  for (const Group& group : groups) {
    // Eq. (7): the node enters the ADS iff it beats the running minimum in
    // at least one permutation. With no closer node in permutation h the
    // miss factor (1 - P(beat)) is 0, so tau = 1.
    double beta = ranks.beta(group.node);
    double prod = 1.0;
    for (uint32_t h = 0; h < k; ++h) {
      prod *= 1.0 - InclusionProbability(mins[h], beta, ranks.kind());
    }
    double tau = 1.0 - prod;
    assert(tau > 0.0);
    result.push_back(HipEntry{group.node, group.dist, tau, 1.0 / tau});
    for (size_t idx : group.members) {
      const AdsEntry& e = entries[idx];
      mins[e.part] = std::min(mins[e.part], e.rank);
    }
  }
  return result;
}

std::vector<HipEntry> KPartitionHip(AdsView ads, uint32_t k,
                                    const RankAssignment& ranks) {
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  const bool weighted = ranks.kind() == RankKind::kExponential ||
                        ranks.kind() == RankKind::kPriority;
  // Eq. (8): tau = (1/k) sum_h P(rank beats bucket-h minimum); an empty
  // bucket is beaten with probability 1. For unweighted ranks P(beat m) =
  // min(m, 1) is node-independent, so we maintain the sum incrementally;
  // weighted ranks recompute the per-node sum.
  std::vector<double> mins(k, ranks.sup());
  double uniform_sum = static_cast<double>(k);
  for (const AdsEntry& e : ads.entries()) {
    double tau;
    if (weighted) {
      double beta = ranks.beta(e.node);
      double s = 0.0;
      for (uint32_t h = 0; h < k; ++h) {
        s += InclusionProbability(mins[h], beta, ranks.kind());
      }
      tau = s / static_cast<double>(k);
    } else {
      tau = uniform_sum / static_cast<double>(k);
    }
    assert(tau > 0.0);
    result.push_back(HipEntry{e.node, e.dist, tau, 1.0 / tau});
    if (e.rank < mins[e.part]) {
      if (!weighted) {
        uniform_sum -= std::min(mins[e.part], 1.0) - e.rank;
      }
      mins[e.part] = e.rank;
    }
  }
  return result;
}

}  // namespace

std::vector<HipEntry> ComputeHipWeights(AdsView ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks) {
  assert(ranks.kind() != RankKind::kPermutation);
  switch (flavor) {
    case SketchFlavor::kBottomK:
      return BottomKHip(ads, k, ranks);
    case SketchFlavor::kKMins:
      return KMinsHip(ads, k, ranks);
    case SketchFlavor::kKPartition:
      return KPartitionHip(ads, k, ranks);
  }
  return {};
}

std::vector<HipEntry> ComputeModifiedHipWeights(AdsView ads, uint32_t k,
                                                double sup) {
  // Scan distance groups, maintaining the bottom-k sketch of all member
  // ranks within the current ball. The threshold for every member of a
  // group is the kth smallest rank of the ball including the group itself
  // (which equals the (k-1)th smallest among the member's peers, the
  // Appendix-A conditioning).
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  BottomKSketch ball(k, sup);
  const auto entries = ads.entries();
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].dist == entries[i].dist) ++j;
    for (size_t t = i; t < j; ++t) ball.Update(entries[t].rank);
    double tau = ball.Threshold();
    for (size_t t = i; t < j; ++t) {
      // Members holding exactly the kth smallest rank of their ball are
      // retained in the sketch but not "sampled": weight 0.
      bool sampled = entries[t].rank < tau;
      result.push_back(HipEntry{entries[t].node, entries[t].dist,
                                std::min(tau, 1.0),
                                sampled ? 1.0 / std::min(tau, 1.0) : 0.0});
    }
    i = j;
  }
  return result;
}

}  // namespace hipads
