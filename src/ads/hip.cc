#include "ads/hip.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/parallel.h"

namespace hipads {

namespace {

// Inclusion probability of a node whose rank must fall below `tau` in rank
// space. For uniform and base-b ranks P(r < tau) = tau exactly (tau is
// always an attainable rank value or the supremum 1); for exponential ranks
// with rate beta, P(Exp(beta) < tau) = 1 - exp(-beta tau); for priority
// (Sequential Poisson) ranks, P(U/beta < tau) = min(1, beta tau).
double InclusionProbability(double tau, double beta, RankKind kind) {
  switch (kind) {
    case RankKind::kUniform:
    case RankKind::kBaseB:
      return std::min(tau, 1.0);
    case RankKind::kExponential:
      if (std::isinf(tau)) return 1.0;
      return -std::expm1(-beta * tau);
    case RankKind::kPriority:
      if (std::isinf(tau)) return 1.0;
      return std::min(1.0, beta * tau);
    case RankKind::kPermutation:
      assert(false && "use PermutationCardinalityEstimator");
      return 1.0;
  }
  return 1.0;
}

// The kernels below are templates over the entry layout: `E` exposes the
// canonical-order entry sequence as size()/node(i)/part(i)/rank(i)/dist(i),
// backed either by an AdsEntry array (AoS — AdsView over an Ads or a
// FlatAdsSet slice) or by per-field arrays (SoA — SoaAdsArena slice). Both
// instantiations execute the identical arithmetic in the identical order,
// so the adjusted weights agree bitwise across layouts.
//
// They are also templates over the output `Sink`, called once per adjusted
// weight as sink(first, end, node, dist, tau, weight) where [first, end) is
// the run of entry indices the weight covers — a single entry for bottom-k
// and k-partition, the same-(dist, node) run for k-mins. One sink appends
// grouped HipEntry records (the scan API), the other writes the per-entry
// aligned arrays the binary format stores; both see the identical call
// sequence, which is what makes precomputed == scanned a bitwise identity.
struct AosEntries {
  std::span<const AdsEntry> e;
  size_t size() const { return e.size(); }
  NodeId node(size_t i) const { return e[i].node; }
  uint32_t part(size_t i) const { return e[i].part; }
  double rank(size_t i) const { return e[i].rank; }
  double dist(size_t i) const { return e[i].dist; }
};

struct SoaEntries {
  SoaAdsView v;
  size_t size() const { return v.size; }
  NodeId node(size_t i) const { return v.node[i]; }
  uint32_t part(size_t i) const { return v.part[i]; }
  double rank(size_t i) const { return v.rank[i]; }
  double dist(size_t i) const { return v.dist[i]; }
};

// Appends one grouped HipEntry per weight.
struct EntrySink {
  std::vector<HipEntry>* out;
  void operator()(size_t first, size_t end, NodeId node, double dist,
                  double tau, double weight) const {
    (void)first;
    (void)end;
    out->push_back(HipEntry{node, dist, tau, weight});
  }
};

// Writes per-entry arrays aligned with the entry sequence: the weight at
// the run's first index, explicit zeros at the remaining members (k-mins
// only; other flavors always get single-entry runs).
struct AlignedSink {
  double* tau;
  double* weight;
  void operator()(size_t first, size_t end, NodeId node, double dist,
                  double t, double w) const {
    (void)node;
    (void)dist;
    tau[first] = t;
    weight[first] = w;
    for (size_t i = first + 1; i < end; ++i) {
      tau[i] = 0.0;
      weight[i] = 0.0;
    }
  }
};

template <typename E, typename Sink>
void BottomKHip(const E& ads, const RankAssignment& ranks,
                BottomKSketch* closer, Sink&& sink) {
  // closer holds the ranks of nodes scanned so far.
  for (size_t i = 0; i < ads.size(); ++i) {
    double tau = closer->Threshold();
    double p = InclusionProbability(tau, ranks.beta(ads.node(i)),
                                    ranks.kind());
    assert(p > 0.0);
    sink(i, i + 1, ads.node(i), ads.dist(i), p, 1.0 / p);
    closer->Update(ads.rank(i));
  }
}

template <typename E, typename Sink>
void KMinsHip(const E& ads, uint32_t k, const RankAssignment& ranks,
              std::vector<double>& mins, Sink&& sink) {
  // Same-node entries (one per permutation) share a single adjusted weight.
  // In canonical (dist, node, part) order — the invariant every storage
  // layout maintains — a node's entries form one contiguous run (they all
  // sit at the node's distance), so runs ARE the groups and the scan needs
  // no group-membership bookkeeping at all.
  size_t i = 0;
  while (i < ads.size()) {
    size_t j = i + 1;
    while (j < ads.size() && ads.dist(j) == ads.dist(i) &&
           ads.node(j) == ads.node(i)) {
      ++j;
    }
    // Eq. (7): the node enters the ADS iff it beats the running minimum in
    // at least one permutation. With no closer node in permutation h the
    // miss factor (1 - P(beat)) is 0, so tau = 1.
    double beta = ranks.beta(ads.node(i));
    double prod = 1.0;
    for (uint32_t h = 0; h < k; ++h) {
      prod *= 1.0 - InclusionProbability(mins[h], beta, ranks.kind());
    }
    double tau = 1.0 - prod;
    assert(tau > 0.0);
    sink(i, j, ads.node(i), ads.dist(i), tau, 1.0 / tau);
    for (size_t idx = i; idx < j; ++idx) {
      mins[ads.part(idx)] = std::min(mins[ads.part(idx)], ads.rank(idx));
    }
    i = j;
  }
}

template <typename E, typename Sink>
void KPartitionHip(const E& ads, uint32_t k, const RankAssignment& ranks,
                   std::vector<double>& mins, Sink&& sink) {
  const bool weighted = ranks.kind() == RankKind::kExponential ||
                        ranks.kind() == RankKind::kPriority;
  // Eq. (8): tau = (1/k) sum_h P(rank beats bucket-h minimum); an empty
  // bucket is beaten with probability 1. For unweighted ranks P(beat m) =
  // min(m, 1) is node-independent, so we maintain the sum incrementally;
  // weighted ranks recompute the per-node sum.
  double uniform_sum = static_cast<double>(k);
  for (size_t i = 0; i < ads.size(); ++i) {
    double tau;
    if (weighted) {
      double beta = ranks.beta(ads.node(i));
      double s = 0.0;
      for (uint32_t h = 0; h < k; ++h) {
        s += InclusionProbability(mins[h], beta, ranks.kind());
      }
      tau = s / static_cast<double>(k);
    } else {
      tau = uniform_sum / static_cast<double>(k);
    }
    assert(tau > 0.0);
    sink(i, i + 1, ads.node(i), ads.dist(i), tau, 1.0 / tau);
    if (ads.rank(i) < mins[ads.part(i)]) {
      if (!weighted) {
        uniform_sum -= std::min(mins[ads.part(i)], 1.0) - ads.rank(i);
      }
      mins[ads.part(i)] = ads.rank(i);
    }
  }
}

template <typename E, typename Sink>
void HipScanT(const E& ads, uint32_t k, SketchFlavor flavor,
              const RankAssignment& ranks, HipScratch* scratch, Sink&& sink) {
  assert(ranks.kind() != RankKind::kPermutation);
  switch (flavor) {
    case SketchFlavor::kBottomK:
      scratch->closer.Reset(k, ranks.sup());
      BottomKHip(ads, ranks, &scratch->closer, sink);
      return;
    case SketchFlavor::kKMins:
      scratch->mins.assign(k, ranks.sup());
      KMinsHip(ads, k, ranks, scratch->mins, sink);
      return;
    case SketchFlavor::kKPartition:
      scratch->mins.assign(k, ranks.sup());
      KPartitionHip(ads, k, ranks, scratch->mins, sink);
      return;
  }
}

template <typename E>
std::span<const HipEntry> ComputeHipWeightsIntoT(const E& ads, uint32_t k,
                                                 SketchFlavor flavor,
                                                 const RankAssignment& ranks,
                                                 HipScratch* scratch) {
  scratch->entries.clear();
  if (scratch->entries.capacity() < ads.size()) {
    scratch->entries.reserve(ads.size());
  }
  HipScanT(ads, k, flavor, ranks, scratch, EntrySink{&scratch->entries});
  return std::span<const HipEntry>(scratch->entries);
}

}  // namespace

std::vector<HipEntry> ComputeHipWeights(AdsView ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks) {
  HipScratch scratch;
  ComputeHipWeightsIntoT(AosEntries{ads.entries()}, k, flavor, ranks,
                         &scratch);
  return std::move(scratch.entries);
}

std::vector<HipEntry> ComputeHipWeights(const SoaAdsView& ads, uint32_t k,
                                        SketchFlavor flavor,
                                        const RankAssignment& ranks) {
  HipScratch scratch;
  ComputeHipWeightsIntoT(SoaEntries{ads}, k, flavor, ranks, &scratch);
  return std::move(scratch.entries);
}

std::span<const HipEntry> ComputeHipWeightsInto(AdsView ads, uint32_t k,
                                                SketchFlavor flavor,
                                                const RankAssignment& ranks,
                                                HipScratch* scratch) {
  return ComputeHipWeightsIntoT(AosEntries{ads.entries()}, k, flavor, ranks,
                                scratch);
}

std::span<const HipEntry> ComputeHipWeightsInto(const SoaAdsView& ads,
                                                uint32_t k,
                                                SketchFlavor flavor,
                                                const RankAssignment& ranks,
                                                HipScratch* scratch) {
  return ComputeHipWeightsIntoT(SoaEntries{ads}, k, flavor, ranks, scratch);
}

void ComputeHipWeightsAligned(AdsView ads, uint32_t k, SketchFlavor flavor,
                              const RankAssignment& ranks, HipScratch* scratch,
                              double* tau, double* weight) {
  HipScanT(AosEntries{ads.entries()}, k, flavor, ranks, scratch,
           AlignedSink{tau, weight});
}

void PrecomputeHipWeights(FlatAdsSet* set, uint32_t num_threads) {
  set->hip_tau.resize(set->entries.size());
  set->hip_weight.resize(set->entries.size());
  if (set->num_nodes() == 0) return;
  ThreadPool pool(num_threads);
  std::vector<HipScratch> scratches(pool.num_threads());
  pool.ParallelFor(set->num_nodes(),
                   [&](size_t begin, size_t end, size_t chunk) {
                     HipScratch& scratch = scratches[chunk];
                     for (size_t v = begin; v < end; ++v) {
                       uint64_t off = set->offsets[v];
                       ComputeHipWeightsAligned(
                           set->of(static_cast<NodeId>(v)), set->k,
                           set->flavor, set->ranks, &scratch,
                           set->hip_tau.data() + off,
                           set->hip_weight.data() + off);
                     }
                   });
}

std::vector<HipEntry> ComputeModifiedHipWeights(AdsView ads, uint32_t k,
                                                double sup) {
  // Scan distance groups, maintaining the bottom-k sketch of all member
  // ranks within the current ball. The threshold for every member of a
  // group is the kth smallest rank of the ball including the group itself
  // (which equals the (k-1)th smallest among the member's peers, the
  // Appendix-A conditioning).
  std::vector<HipEntry> result;
  result.reserve(ads.size());
  BottomKSketch ball(k, sup);
  const auto entries = ads.entries();
  size_t i = 0;
  while (i < entries.size()) {
    size_t j = i;
    while (j < entries.size() && entries[j].dist == entries[i].dist) ++j;
    for (size_t t = i; t < j; ++t) ball.Update(entries[t].rank);
    double tau = ball.Threshold();
    for (size_t t = i; t < j; ++t) {
      // Members holding exactly the kth smallest rank of their ball are
      // retained in the sketch but not "sampled": weight 0.
      bool sampled = entries[t].rank < tau;
      result.push_back(HipEntry{entries[t].node, entries[t].dist,
                                std::min(tau, 1.0),
                                sampled ? 1.0 / std::min(tau, 1.0) : 0.0});
    }
    i = j;
  }
  return result;
}

}  // namespace hipads
