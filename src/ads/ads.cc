#include "ads/ads.h"

#include <algorithm>
#include <cassert>

#include "util/stats.h"

namespace hipads {

Ads::Ads(std::vector<AdsEntry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(), AdsEntryCloser);
}

bool AdsView::Contains(NodeId node) const {
  // Entries are sorted by (dist, node), so node ids alone are unordered and
  // a membership probe has to scan; the entries are contiguous, so this is
  // a cache-linear pass. Not a hot path (estimators never call it).
  for (const AdsEntry& e : entries_) {
    if (e.node == node) return true;
  }
  return false;
}

double AdsView::DistanceOf(NodeId node) const {
  for (const AdsEntry& e : entries_) {
    if (e.node == node) return e.dist;
  }
  return -1.0;
}

AdsNodeIndex::AdsNodeIndex(AdsView view) : view_(view) {
  by_node_.resize(view.size());
  for (uint32_t i = 0; i < by_node_.size(); ++i) by_node_[i] = i;
  std::span<const AdsEntry> entries = view_.entries();
  std::sort(by_node_.begin(), by_node_.end(),
            [&entries](uint32_t a, uint32_t b) {
              if (entries[a].node != entries[b].node) {
                return entries[a].node < entries[b].node;
              }
              // Position breaks node ties: canonical order is sorted by
              // distance, so the first position is the smallest distance.
              return a < b;
            });
}

bool AdsNodeIndex::Contains(NodeId node) const {
  std::span<const AdsEntry> entries = view_.entries();
  auto it = std::lower_bound(by_node_.begin(), by_node_.end(), node,
                             [&entries](uint32_t pos, NodeId n) {
                               return entries[pos].node < n;
                             });
  return it != by_node_.end() && entries[*it].node == node;
}

double AdsNodeIndex::DistanceOf(NodeId node) const {
  std::span<const AdsEntry> entries = view_.entries();
  auto it = std::lower_bound(by_node_.begin(), by_node_.end(), node,
                             [&entries](uint32_t pos, NodeId n) {
                               return entries[pos].node < n;
                             });
  if (it == by_node_.end() || entries[*it].node != node) return -1.0;
  return entries[*it].dist;
}

size_t AdsView::CountWithin(double d) const {
  // Distances are sorted ascending: the count is the upper-bound position.
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), d,
      [](double value, const AdsEntry& e) { return value < e.dist; });
  return static_cast<size_t>(it - entries_.begin());
}

BottomKSketch AdsView::BottomKAt(double d, uint32_t k, double sup) const {
  BottomKSketch sketch(k, sup);
  size_t count = CountWithin(d);
  for (size_t i = 0; i < count; ++i) sketch.Update(entries_[i].rank);
  return sketch;
}

KMinsSketch AdsView::KMinsAt(double d, uint32_t k, double sup) const {
  KMinsSketch sketch(k, sup);
  size_t count = CountWithin(d);
  for (size_t i = 0; i < count; ++i) {
    sketch.Update(entries_[i].part, entries_[i].rank);
  }
  return sketch;
}

KPartitionSketch AdsView::KPartitionAt(double d, uint32_t k,
                                       double sup) const {
  KPartitionSketch sketch(k, sup);
  size_t count = CountWithin(d);
  for (size_t i = 0; i < count; ++i) {
    sketch.Update(entries_[i].part, entries_[i].rank);
  }
  return sketch;
}

Ads Ads::CanonicalBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                          double sup) {
  std::sort(candidates.begin(), candidates.end(), AdsEntryCloser);
  Ads result;
  BottomKSketch threshold(k, sup);
  for (const AdsEntry& e : candidates) {
    if (e.rank < threshold.Threshold()) {
      result.Append(e);
      threshold.Update(e.rank);
    }
  }
  return result;
}

Ads Ads::ModifiedBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                         double sup) {
  std::sort(candidates.begin(), candidates.end(), AdsEntryCloser);
  Ads result;
  BottomKSketch closer(k, sup);  // ranks of kept entries strictly closer
  size_t i = 0;
  while (i < candidates.size()) {
    // Group of candidates at one distinct distance.
    size_t j = i;
    while (j < candidates.size() && candidates[j].dist == candidates[i].dist) {
      ++j;
    }
    // kth smallest rank among all nodes within this distance: merge the
    // strictly-closer sketch with this group's ranks. A candidate belongs
    // iff fewer than k OTHER nodes in the ball have a smaller rank, i.e.
    // its rank is at or below the ball's kth smallest (Appendix A counts
    // the node itself out of its own threshold).
    BottomKSketch ball = closer;
    for (size_t t = i; t < j; ++t) ball.Update(candidates[t].rank);
    double kth = ball.Threshold();
    for (size_t t = i; t < j; ++t) {
      if (candidates[t].rank <= kth) result.Append(candidates[t]);
    }
    // All kept nodes at this distance become "closer" for later groups; so
    // do unkept ones, but their ranks are >= kth and cannot tighten the
    // bottom-k threshold beyond what the ball sketch already holds.
    closer = ball;
    i = j;
  }
  return result;
}

uint64_t AdsSet::TotalEntries() const {
  uint64_t total = 0;
  for (const Ads& a : ads) total += a.size();
  return total;
}

void ReserveExpectedAdsSize(std::vector<std::vector<AdsEntry>>& out,
                            uint32_t k, SketchFlavor flavor) {
  uint64_t n = out.size();
  double expected = 0.0;
  switch (flavor) {
    case SketchFlavor::kBottomK:
      expected = ExpectedBottomKAdsSize(k, n);
      break;
    case SketchFlavor::kKMins:
      // k independent bottom-1 passes: k * H_n expected entries.
      expected = k * ExpectedBottomKAdsSize(1, n);
      break;
    case SketchFlavor::kKPartition:
      expected = ExpectedKPartitionAdsSize(k, n);
      break;
  }
  size_t capacity = static_cast<size_t>(expected) + 1;
  for (auto& entries : out) entries.reserve(capacity);
}

double ExpectedBottomKAdsSize(uint32_t k, uint64_t n) {
  if (n <= k) return static_cast<double>(n);
  return k + k * (HarmonicNumber(n) - HarmonicNumber(k));
}

double ExpectedKPartitionAdsSize(uint32_t k, uint64_t n) {
  if (n <= k) return static_cast<double>(n);
  // Each bucket holds ~ n/k elements; a bottom-1 ADS over m elements has
  // expected size H_m.
  return k * HarmonicNumber(n / k);
}

}  // namespace hipads
