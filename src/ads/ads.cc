#include "ads/ads.h"

#include <algorithm>
#include <cassert>

#include "util/stats.h"

namespace hipads {

Ads::Ads(std::vector<AdsEntry> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(), AdsEntryCloser);
}

bool Ads::Contains(NodeId node) const {
  for (const AdsEntry& e : entries_) {
    if (e.node == node) return true;
  }
  return false;
}

double Ads::DistanceOf(NodeId node) const {
  for (const AdsEntry& e : entries_) {
    if (e.node == node) return e.dist;
  }
  return -1.0;
}

size_t Ads::CountWithin(double d) const {
  size_t c = 0;
  for (const AdsEntry& e : entries_) {
    if (e.dist > d) break;
    ++c;
  }
  return c;
}

BottomKSketch Ads::BottomKAt(double d, uint32_t k, double sup) const {
  BottomKSketch sketch(k, sup);
  for (const AdsEntry& e : entries_) {
    if (e.dist > d) break;
    sketch.Update(e.rank);
  }
  return sketch;
}

KMinsSketch Ads::KMinsAt(double d, uint32_t k, double sup) const {
  KMinsSketch sketch(k, sup);
  for (const AdsEntry& e : entries_) {
    if (e.dist > d) break;
    sketch.Update(e.part, e.rank);
  }
  return sketch;
}

KPartitionSketch Ads::KPartitionAt(double d, uint32_t k, double sup) const {
  KPartitionSketch sketch(k, sup);
  for (const AdsEntry& e : entries_) {
    if (e.dist > d) break;
    sketch.Update(e.part, e.rank);
  }
  return sketch;
}

Ads Ads::CanonicalBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                          double sup) {
  std::sort(candidates.begin(), candidates.end(), AdsEntryCloser);
  Ads result;
  BottomKSketch threshold(k, sup);
  for (const AdsEntry& e : candidates) {
    if (e.rank < threshold.Threshold()) {
      result.Append(e);
      threshold.Update(e.rank);
    }
  }
  return result;
}

Ads Ads::ModifiedBottomK(std::vector<AdsEntry> candidates, uint32_t k,
                         double sup) {
  std::sort(candidates.begin(), candidates.end(), AdsEntryCloser);
  Ads result;
  BottomKSketch closer(k, sup);  // ranks of kept entries strictly closer
  size_t i = 0;
  while (i < candidates.size()) {
    // Group of candidates at one distinct distance.
    size_t j = i;
    while (j < candidates.size() && candidates[j].dist == candidates[i].dist) {
      ++j;
    }
    // kth smallest rank among all nodes within this distance: merge the
    // strictly-closer sketch with this group's ranks. A candidate belongs
    // iff fewer than k OTHER nodes in the ball have a smaller rank, i.e.
    // its rank is at or below the ball's kth smallest (Appendix A counts
    // the node itself out of its own threshold).
    BottomKSketch ball = closer;
    for (size_t t = i; t < j; ++t) ball.Update(candidates[t].rank);
    double kth = ball.Threshold();
    for (size_t t = i; t < j; ++t) {
      if (candidates[t].rank <= kth) result.Append(candidates[t]);
    }
    // All kept nodes at this distance become "closer" for later groups; so
    // do unkept ones, but their ranks are >= kth and cannot tighten the
    // bottom-k threshold beyond what the ball sketch already holds.
    closer = ball;
    i = j;
  }
  return result;
}

uint64_t AdsSet::TotalEntries() const {
  uint64_t total = 0;
  for (const Ads& a : ads) total += a.size();
  return total;
}

double ExpectedBottomKAdsSize(uint32_t k, uint64_t n) {
  if (n <= k) return static_cast<double>(n);
  return k + k * (HarmonicNumber(n) - HarmonicNumber(k));
}

double ExpectedKPartitionAdsSize(uint32_t k, uint64_t n) {
  if (n <= k) return static_cast<double>(n);
  // Each bucket holds ~ n/k elements; a bottom-1 ADS over m elements has
  // expected size H_m.
  return k * HarmonicNumber(n / k);
}

}  // namespace hipads
