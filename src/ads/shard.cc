#include "ads/shard.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace hipads {

namespace {

constexpr char kManifestMagic[] = "hipads-shards-v1";

std::string ShardFileName(uint32_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05u.ads2", s);
  return buf;
}

// The manifest references shard files relative to its own directory.
std::string JoinPath(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

}  // namespace

bool IsShardedAdsPath(const std::string& path) {
  std::error_code ec;
  std::string manifest_path = path;
  if (std::filesystem::is_directory(path, ec)) {
    manifest_path = JoinPath(path, kShardManifestName);
  }
  std::ifstream f(manifest_path, std::ios::binary);
  std::string line;
  return f && std::getline(f, line) && line == kManifestMagic;
}

std::vector<NodeId> BalancedShardSplits(const FlatAdsSet& set,
                                        uint32_t num_shards) {
  uint64_t n = set.num_nodes();
  if (num_shards == 0) num_shards = 1;
  if (num_shards > n) num_shards = n == 0 ? 1 : static_cast<uint32_t>(n);
  std::vector<NodeId> begins{0};
  // Greedy walk over the CSR offsets: cut whenever the running shard holds
  // its proportional share of the remaining entries. Every shard gets at
  // least one node, so there are never empty shards.
  uint64_t total = set.TotalEntries();
  uint64_t done_entries = 0;
  for (uint32_t s = 1; s < num_shards; ++s) {
    uint64_t remaining_shards = num_shards - s + 1;
    uint64_t target =
        done_entries + (total - done_entries) / remaining_shards;
    NodeId v = begins.back();
    // Advance at least one node, then until the shard reaches its target
    // share — but leave enough nodes for the remaining shards.
    NodeId max_begin = static_cast<NodeId>(n - (num_shards - s));
    NodeId cut = v + 1;
    while (cut < max_begin && set.offsets[cut] < target) ++cut;
    begins.push_back(cut);
    done_entries = set.offsets[cut];
  }
  return begins;
}

Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          const std::vector<NodeId>& split_begins) {
  uint64_t n = set.num_nodes();
  if (split_begins.empty() || split_begins.front() != 0) {
    return Status::InvalidArgument("split_begins must start at node 0");
  }
  for (size_t s = 1; s < split_begins.size(); ++s) {
    if (split_begins[s] <= split_begins[s - 1] || split_begins[s] > n) {
      return Status::InvalidArgument(
          "split_begins must be strictly increasing and within the node "
          "range");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create shard directory " + dir + ": " +
                           ec.message());
  }

  std::vector<ShardInfo> shards;
  for (size_t s = 0; s < split_begins.size(); ++s) {
    ShardInfo info;
    info.begin = split_begins[s];
    info.end = s + 1 < split_begins.size()
                   ? split_begins[s + 1]
                   : static_cast<NodeId>(n);
    info.file = ShardFileName(static_cast<uint32_t>(s));

    FlatAdsSet slice;
    slice.flavor = set.flavor;
    slice.k = set.k;
    slice.ranks = set.ranks;
    uint64_t base = set.offsets[info.begin];
    slice.offsets.reserve(info.end - info.begin + 1);
    for (NodeId v = info.begin; v < info.end; ++v) {
      slice.offsets.push_back(set.offsets[v + 1] - base);
    }
    slice.entries.assign(
        set.entries.begin() + static_cast<int64_t>(base),
        set.entries.begin() + static_cast<int64_t>(set.offsets[info.end]));
    info.num_entries = slice.entries.size();

    Status st = WriteAdsSetFile(slice, JoinPath(dir, info.file),
                                AdsFileFormat::kBinaryV2);
    if (!st.ok()) return st;
    shards.push_back(std::move(info));
  }

  // Manifest last: its presence marks the directory complete.
  std::ostringstream os;
  os << kManifestMagic << '\n'
     << SerializeAdsParams(set.flavor, set.k, set.ranks, n);
  os << "shards " << shards.size() << '\n';
  for (const ShardInfo& info : shards) {
    os << "shard " << info.begin << ' ' << info.end << ' '
       << info.num_entries << ' ' << info.file << '\n';
  }
  std::string manifest_path = JoinPath(dir, kShardManifestName);
  std::ofstream f(manifest_path, std::ios::binary);
  if (!f) {
    return Status::IOError("cannot open " + manifest_path + " for writing");
  }
  f << os.str();
  if (!f.good()) return Status::IOError("write failed for " + manifest_path);
  return Status::Ok();
}

Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          uint32_t num_shards) {
  return WriteShardedAdsSet(set, dir, BalancedShardSplits(set, num_shards));
}

StatusOr<ShardedAdsSet> ShardedAdsSet::Open(
    const std::string& path, std::function<double(uint64_t)> beta,
    uint32_t max_resident) {
  std::string manifest_path = path;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    manifest_path = JoinPath(path, kShardManifestName);
  }
  std::ifstream f(manifest_path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + manifest_path);

  std::string line;
  if (!std::getline(f, line) || line != kManifestMagic) {
    return Status::Corruption("missing hipads-shards-v1 manifest header");
  }
  ShardedAdsSet set;
  set.dir_ = std::filesystem::path(manifest_path).parent_path().string();
  set.beta_ = beta;
  set.max_resident_ = std::max(1u, max_resident);
  Status st = ParseAdsParams(f, std::move(beta), &set.flavor_, &set.k_,
                             &set.ranks_, &set.num_nodes_);
  if (!st.ok()) return st;

  std::string word;
  uint64_t num_shards = 0;
  if (!(f >> word >> num_shards) || word != "shards" || num_shards == 0) {
    return Status::Corruption("bad shards line in manifest");
  }
  NodeId expect_begin = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    uint64_t begin, end;
    if (!(f >> word >> begin >> end >> info.num_entries >> info.file) ||
        word != "shard") {
      return Status::Corruption("bad shard line " + std::to_string(s));
    }
    if (begin != expect_begin || end < begin || end > set.num_nodes_) {
      return Status::Corruption(
          "shard ranges must tile [0, nodes) in order; bad range at shard " +
          std::to_string(s));
    }
    info.begin = static_cast<NodeId>(begin);
    info.end = static_cast<NodeId>(end);
    expect_begin = info.end;
    set.shards_.push_back(std::move(info));
  }
  if (expect_begin != set.num_nodes_) {
    return Status::Corruption("shard ranges do not cover all nodes");
  }
  if (f >> word) {
    return Status::Corruption("trailing garbage after shard table");
  }
  set.resident_.resize(set.shards_.size());
  set.last_used_.assign(set.shards_.size(), 0);
  return set;
}

uint64_t ShardedAdsSet::TotalEntries() const {
  uint64_t total = 0;
  for (const ShardInfo& info : shards_) total += info.num_entries;
  return total;
}

uint32_t ShardedAdsSet::ShardOf(NodeId v) const {
  // Binary search over the range table: first shard with end > v.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), v,
      [](NodeId node, const ShardInfo& info) { return node < info.end; });
  return static_cast<uint32_t>(it - shards_.begin());
}

StatusOr<const FlatAdsSet*> ShardedAdsSet::Shard(uint32_t s) const {
  last_used_[s] = ++tick_;
  if (resident_[s] != nullptr) return resident_[s].get();

  const ShardInfo& info = shards_[s];
  auto loaded = ReadFlatAdsSetFile(JoinPath(dir_, info.file), beta_);
  if (!loaded.ok()) return loaded.status();
  FlatAdsSet& flat = loaded.value();
  if (flat.flavor != flavor_ || flat.k != k_ ||
      flat.ranks.kind() != ranks_.kind() ||
      flat.ranks.seed() != ranks_.seed() ||
      flat.ranks.base() != ranks_.base() ||
      flat.num_nodes() != info.end - info.begin ||
      flat.TotalEntries() != info.num_entries) {
    return Status::Corruption("shard " + info.file +
                              " does not match its manifest entry");
  }

  uint32_t live = NumResident();
  if (live >= max_resident_) {
    // Evict the least recently used resident shard.
    uint32_t victim = static_cast<uint32_t>(resident_.size());
    for (uint32_t i = 0; i < resident_.size(); ++i) {
      if (resident_[i] != nullptr &&
          (victim == resident_.size() ||
           last_used_[i] < last_used_[victim])) {
        victim = i;
      }
    }
    if (victim < resident_.size()) resident_[victim].reset();
  }
  resident_[s] = std::make_unique<FlatAdsSet>(std::move(flat));
  return resident_[s].get();
}

StatusOr<AdsView> ShardedAdsSet::ViewOf(NodeId v) const {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  uint32_t s = ShardOf(v);
  auto shard = Shard(s);
  if (!shard.ok()) return shard.status();
  return shard.value()->of(v - shards_[s].begin);
}

uint32_t ShardedAdsSet::NumResident() const {
  uint32_t live = 0;
  for (const auto& p : resident_) {
    if (p != nullptr) ++live;
  }
  return live;
}

}  // namespace hipads
