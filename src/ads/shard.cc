#include "ads/shard.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include "util/annotations.h"
#include "util/metrics.h"
#include "util/mutex.h"

namespace hipads {

namespace {

constexpr char kManifestMagic[] = "hipads-shards-v1";
constexpr uint32_t kNoShard = std::numeric_limits<uint32_t>::max();

std::string ShardFileName(uint32_t s) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard-%05u.ads2", s);
  return buf;
}

// The manifest references shard files relative to its own directory.
std::string JoinPath(const std::string& dir, const std::string& file) {
  return (std::filesystem::path(dir) / file).string();
}

}  // namespace

// Everything needed to load and manifest-check one shard arena, copied out
// of the set at Open so the prefetch worker never touches the (movable)
// ShardedAdsSet object itself.
struct ShardedAdsSet::LoadContext {
  std::string dir;
  std::vector<ShardInfo> shards;
  SketchFlavor flavor = SketchFlavor::kBottomK;
  uint32_t k = 0;
  RankKind rank_kind = RankKind::kUniform;
  uint64_t seed = 0;
  double base = 0.0;
  bool use_mmap = false;
  std::function<double(uint64_t)> beta;

  // Shard-file loads performed through this context, whichever thread did
  // them. Per-context so tests can observe that a K-statistic fused sweep
  // costs exactly one load per shard; registered so scrapes see the
  // process total under "ads.shard.loads". The context is heap-owned
  // behind a shared_ptr, so the instrument address stays stable across
  // ShardedAdsSet moves.
  mutable RegisteredCounter num_loads{"ads.shard.loads"};

  // Loads shard s (copying or mmap per use_mmap) and verifies it against
  // its manifest entry. Pure function of the context (the load counter
  // aside): safe to call from the prefetch worker and the consumer
  // concurrently (for different s).
  StatusOr<std::unique_ptr<AdsBackend>> Load(uint32_t s) const {
    num_loads.Add();
    const ShardInfo& info = shards[s];
    std::string path = JoinPath(dir, info.file);
    std::unique_ptr<AdsBackend> arena;
    if (use_mmap) {
      auto opened = MmapAdsSet::Open(path, beta);
      if (!opened.ok()) return opened.status();
      arena = std::make_unique<MmapAdsSet>(std::move(opened).value());
    } else {
      auto loaded = ReadFlatAdsSetFile(path, beta);
      if (!loaded.ok()) return loaded.status();
      arena = std::make_unique<FlatAdsBackend>(std::move(loaded).value());
    }
    if (arena->flavor() != flavor || arena->k() != k ||
        arena->ranks().kind() != rank_kind ||
        arena->ranks().seed() != seed || arena->ranks().base() != base ||
        arena->num_nodes() != info.end - info.begin ||
        arena->TotalEntries() != info.num_entries) {
      return Status::Corruption("shard " + info.file +
                                " does not match its manifest entry");
    }
    return arena;
  }
};

// Single background worker with a queued request / multi-slot result
// pipeline. The consumer requests its lookahead window (Request) and
// later either takes a staged arena (Take) or, if the worker never got to
// it, loads synchronously. The number of staged arenas is bounded by the
// window size the caller requests (ShardedOptions::prefetch_depth). All
// member state is guarded by mu_; loads run unlocked.
class ShardedAdsSet::Prefetcher {
 public:
  explicit Prefetcher(std::shared_ptr<const LoadContext> ctx)
      : ctx_(std::move(ctx)), worker_([this] { Loop(); }) {}

  ~Prefetcher() {
    {
      MutexLock lock(mu_);
      stop_ = true;
    }
    cv_.NotifyAll();
    worker_.join();
  }

  // Asks the worker to load `wanted` (the sweep's lookahead window, in
  // consumption order) in the background. The window replaces any pending
  // queue and drops staged arenas outside it — the sweep has moved past
  // them — so staged memory never exceeds the window size.
  void Request(const std::vector<uint32_t>& wanted) {
    {
      MutexLock lock(mu_);
      auto in_wanted = [&](uint32_t s) {
        return std::find(wanted.begin(), wanted.end(), s) != wanted.end();
      };
      for (auto it = staged_.begin(); it != staged_.end();) {
        it = in_wanted(it->first) ? std::next(it) : staged_.erase(it);
      }
      queue_.clear();
      for (uint32_t s : wanted) {
        if (s != loading_ && staged_.find(s) == staged_.end()) {
          queue_.push_back(s);
        }
      }
    }
    cv_.NotifyAll();
  }

  // Hands over shard s if this prefetcher was asked for it: waits for an
  // in-flight load of s, cancels a not-yet-started request. Returns
  // nullopt when s was never requested (caller loads synchronously).
  std::optional<StatusOr<std::unique_ptr<AdsBackend>>> Take(uint32_t s) {
    MutexLock lock(mu_);
    auto queued = std::find(queue_.begin(), queue_.end(), s);
    if (queued != queue_.end()) {
      queue_.erase(queued);
      return std::nullopt;
    }
    while (loading_ == s) cv_.Wait(mu_);
    auto staged = staged_.find(s);
    if (staged != staged_.end()) {
      auto result = std::move(staged->second);
      staged_.erase(staged);
      return result;
    }
    return std::nullopt;
  }

 private:
  // Alternates between holding mu_ (queue/stage bookkeeping) and dropping
  // it around the disk load. Written with explicit Lock/Unlock sections —
  // consistent at every loop boundary — so the thread-safety analysis can
  // verify the guarded accesses instead of giving up on a juggled
  // std::unique_lock.
  void Loop() {
    mu_.Lock();
    for (;;) {
      while (!stop_ && queue_.empty()) cv_.Wait(mu_);
      if (stop_) break;
      uint32_t s = queue_.front();
      queue_.pop_front();
      loading_ = s;
      mu_.Unlock();
      auto loaded = ctx_->Load(s);  // unlocked: the slow part
      mu_.Lock();
      loading_ = kNoShard;
      staged_.emplace(s, std::move(loaded));
      cv_.NotifyAll();
    }
    mu_.Unlock();
  }

  std::shared_ptr<const LoadContext> ctx_;
  Mutex mu_;
  CondVar cv_;
  bool stop_ HIPADS_GUARDED_BY(mu_) = false;
  // Pending loads, in consumption order.
  std::deque<uint32_t> queue_ HIPADS_GUARDED_BY(mu_);
  uint32_t loading_ HIPADS_GUARDED_BY(mu_) = kNoShard;
  std::map<uint32_t, StatusOr<std::unique_ptr<AdsBackend>>> staged_
      HIPADS_GUARDED_BY(mu_);
  std::thread worker_;  // last member: starts after all state above exists
};

ShardedAdsSet::ShardedAdsSet() = default;
ShardedAdsSet::ShardedAdsSet(ShardedAdsSet&&) noexcept = default;
ShardedAdsSet& ShardedAdsSet::operator=(ShardedAdsSet&&) noexcept = default;
ShardedAdsSet::~ShardedAdsSet() = default;

bool IsShardedAdsPath(const std::string& path) {
  std::error_code ec;
  std::string manifest_path = path;
  if (std::filesystem::is_directory(path, ec)) {
    manifest_path = JoinPath(path, kShardManifestName);
  }
  std::ifstream f(manifest_path, std::ios::binary);
  std::string line;
  return f && std::getline(f, line) && line == kManifestMagic;
}

std::vector<NodeId> BalancedShardSplits(const FlatAdsSet& set,
                                        uint32_t num_shards) {
  uint64_t n = set.num_nodes();
  if (num_shards == 0) num_shards = 1;
  if (num_shards > n) num_shards = n == 0 ? 1 : static_cast<uint32_t>(n);
  std::vector<NodeId> begins{0};
  // Greedy walk over the CSR offsets: cut whenever the running shard holds
  // its proportional share of the remaining entries. Every shard gets at
  // least one node, so there are never empty shards.
  uint64_t total = set.TotalEntries();
  uint64_t done_entries = 0;
  for (uint32_t s = 1; s < num_shards; ++s) {
    uint64_t remaining_shards = num_shards - s + 1;
    uint64_t target =
        done_entries + (total - done_entries) / remaining_shards;
    NodeId v = begins.back();
    // Advance at least one node, then until the shard reaches its target
    // share — but leave enough nodes for the remaining shards.
    NodeId max_begin = static_cast<NodeId>(n - (num_shards - s));
    NodeId cut = v + 1;
    while (cut < max_begin && set.offsets[cut] < target) ++cut;
    begins.push_back(cut);
    done_entries = set.offsets[cut];
  }
  return begins;
}

Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          const std::vector<NodeId>& split_begins) {
  uint64_t n = set.num_nodes();
  if (split_begins.empty() || split_begins.front() != 0) {
    return Status::InvalidArgument("split_begins must start at node 0");
  }
  for (size_t s = 1; s < split_begins.size(); ++s) {
    if (split_begins[s] <= split_begins[s - 1] || split_begins[s] > n) {
      return Status::InvalidArgument(
          "split_begins must be strictly increasing and within the node "
          "range");
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IOError("cannot create shard directory " + dir + ": " +
                           ec.message());
  }

  std::vector<ShardInfo> shards;
  for (size_t s = 0; s < split_begins.size(); ++s) {
    ShardInfo info;
    info.begin = split_begins[s];
    info.end = s + 1 < split_begins.size()
                   ? split_begins[s + 1]
                   : static_cast<NodeId>(n);
    info.file = ShardFileName(static_cast<uint32_t>(s));

    FlatAdsSet slice;
    slice.flavor = set.flavor;
    slice.k = set.k;
    slice.ranks = set.ranks;
    uint64_t base = set.offsets[info.begin];
    slice.offsets.reserve(info.end - info.begin + 1);
    for (NodeId v = info.begin; v < info.end; ++v) {
      slice.offsets.push_back(set.offsets[v + 1] - base);
    }
    slice.entries.assign(
        set.entries.begin() + static_cast<int64_t>(base),
        set.entries.begin() + static_cast<int64_t>(set.offsets[info.end]));
    if (set.has_hip()) {
      // Slice the aligned HIP arrays along with the entry arena, so every
      // shard file carries its nodes' section (entries and weights use the
      // same CSR offsets).
      slice.hip_tau.assign(
          set.hip_tau.begin() + static_cast<int64_t>(base),
          set.hip_tau.begin() + static_cast<int64_t>(set.offsets[info.end]));
      slice.hip_weight.assign(
          set.hip_weight.begin() + static_cast<int64_t>(base),
          set.hip_weight.begin() +
              static_cast<int64_t>(set.offsets[info.end]));
    }
    info.num_entries = slice.entries.size();

    Status st = WriteAdsSetFile(slice, JoinPath(dir, info.file),
                                AdsFileFormat::kBinaryV2);
    if (!st.ok()) return st;
    shards.push_back(std::move(info));
  }

  // Manifest last: its presence marks the directory complete.
  std::ostringstream os;
  os << kManifestMagic << '\n'
     << SerializeAdsParams(set.flavor, set.k, set.ranks, n);
  os << "shards " << shards.size() << '\n';
  for (const ShardInfo& info : shards) {
    os << "shard " << info.begin << ' ' << info.end << ' '
       << info.num_entries << ' ' << info.file << '\n';
  }
  std::string manifest_path = JoinPath(dir, kShardManifestName);
  std::ofstream f(manifest_path, std::ios::binary);
  if (!f) {
    return Status::IOError("cannot open " + manifest_path + " for writing");
  }
  f << os.str();
  if (!f.good()) return Status::IOError("write failed for " + manifest_path);
  return Status::Ok();
}

Status WriteShardedAdsSet(const FlatAdsSet& set, const std::string& dir,
                          uint32_t num_shards) {
  return WriteShardedAdsSet(set, dir, BalancedShardSplits(set, num_shards));
}

StatusOr<ShardedAdsSet> ShardedAdsSet::Open(const std::string& path,
                                            const ShardedOptions& options) {
  std::string manifest_path = path;
  std::error_code ec;
  if (std::filesystem::is_directory(path, ec)) {
    manifest_path = JoinPath(path, kShardManifestName);
  }
  std::ifstream f(manifest_path, std::ios::binary);
  if (!f) return Status::IOError("cannot open " + manifest_path);

  std::string line;
  if (!std::getline(f, line) || line != kManifestMagic) {
    return Status::Corruption("missing hipads-shards-v1 manifest header");
  }
  ShardedAdsSet set;
  set.dir_ = std::filesystem::path(manifest_path).parent_path().string();
  set.max_resident_ = std::max(1u, options.max_resident);
  set.prefetch_depth_ = std::max(1u, options.prefetch_depth);
  Status st = ParseAdsParams(f, options.beta, &set.flavor_, &set.k_,
                             &set.ranks_, &set.num_nodes_);
  if (!st.ok()) return st;

  std::string word;
  uint64_t num_shards = 0;
  if (!(f >> word >> num_shards) || word != "shards" || num_shards == 0) {
    return Status::Corruption("bad shards line in manifest");
  }
  NodeId expect_begin = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    ShardInfo info;
    uint64_t begin, end;
    if (!(f >> word >> begin >> end >> info.num_entries >> info.file) ||
        word != "shard") {
      return Status::Corruption("bad shard line " + std::to_string(s));
    }
    if (begin != expect_begin || end < begin || end > set.num_nodes_) {
      return Status::Corruption(
          "shard ranges must tile [0, nodes) in order; bad range at shard " +
          std::to_string(s));
    }
    info.begin = static_cast<NodeId>(begin);
    info.end = static_cast<NodeId>(end);
    expect_begin = info.end;
    set.shards_.push_back(std::move(info));
  }
  if (expect_begin != set.num_nodes_) {
    return Status::Corruption("shard ranges do not cover all nodes");
  }
  if (f >> word) {
    return Status::Corruption("trailing garbage after shard table");
  }
  set.resident_.resize(set.shards_.size());
  set.last_used_.assign(set.shards_.size(), 0);

  auto ctx = std::make_shared<LoadContext>();
  ctx->dir = set.dir_;
  ctx->shards = set.shards_;
  ctx->flavor = set.flavor_;
  ctx->k = set.k_;
  ctx->rank_kind = set.ranks_.kind();
  ctx->seed = set.ranks_.seed();
  ctx->base = set.ranks_.base();
  ctx->use_mmap = options.use_mmap;
  ctx->beta = options.beta;
  set.load_ctx_ = std::move(ctx);
  if (options.prefetch) {
    set.prefetcher_ = std::make_unique<Prefetcher>(set.load_ctx_);
  }
  return set;
}

StatusOr<ShardedAdsSet> ShardedAdsSet::Open(
    const std::string& path, std::function<double(uint64_t)> beta,
    uint32_t max_resident) {
  ShardedOptions options;
  options.beta = std::move(beta);
  options.max_resident = max_resident;
  return Open(path, options);
}

uint64_t ShardedAdsSet::TotalEntries() const {
  uint64_t total = 0;
  for (const ShardInfo& info : shards_) total += info.num_entries;
  return total;
}

uint32_t ShardedAdsSet::ShardOf(NodeId v) const {
  // Binary search over the range table: first shard with end > v.
  auto it = std::upper_bound(
      shards_.begin(), shards_.end(), v,
      [](NodeId node, const ShardInfo& info) { return node < info.end; });
  return static_cast<uint32_t>(it - shards_.begin());
}

Status ShardedAdsSet::ValidateFiles() const {
  for (const ShardInfo& info : shards_) {
    std::string path = JoinPath(dir_, info.file);
    std::error_code ec;
    uint64_t actual = std::filesystem::file_size(path, ec);
    if (ec) {
      return Status::IOError("manifest references missing shard file " +
                             path + ": " + ec.message());
    }
    uint64_t expected =
        AdsBinaryFileSize(info.end - info.begin, info.num_entries);
    // Exactly two sizes are valid per shard: the base v2 image or base +
    // the optional HIP section (shards may mix — the section is per-file).
    uint64_t expected_hip = expected + AdsHipSectionBytes(info.num_entries);
    if (actual != expected && actual != expected_hip) {
      return Status::Corruption(
          "shard file " + path + " is " + std::to_string(actual) +
          " bytes; manifest implies " + std::to_string(expected) + " or " +
          std::to_string(expected_hip) +
          (actual < expected ? " (truncated?)" : " (trailing data?)"));
    }
  }
  return Status::Ok();
}

bool ShardedAdsSet::HipResident() const {
  if (hip_resident_ < 0) {
    bool all = !shards_.empty();
    for (const ShardInfo& info : shards_) {
      std::error_code ec;
      uint64_t actual =
          std::filesystem::file_size(JoinPath(dir_, info.file), ec);
      if (ec ||
          actual != AdsBinaryFileSize(info.end - info.begin,
                                      info.num_entries) +
                        AdsHipSectionBytes(info.num_entries)) {
        all = false;
        break;
      }
    }
    hip_resident_ = all ? 1 : 0;
  }
  return hip_resident_ == 1;
}

void ShardedAdsSet::EvictFor(uint32_t installing) const {
  // Evict least-recently-used resident arenas until under budget (never
  // the arena being installed), keeping NumResident() <= max_resident_.
  // The range a caller is actively consuming is always its most recently
  // touched one, so LRU never picks it while max_resident >= 2; at
  // max_resident = 1 installing a new range invalidates the previous
  // range's views, exactly as documented.
  for (;;) {
    if (NumResident() < max_resident_) return;
    uint32_t victim = kNoShard;
    for (uint32_t i = 0; i < resident_.size(); ++i) {
      if (resident_[i] == nullptr || i == installing) continue;
      if (victim == kNoShard || last_used_[i] < last_used_[victim]) {
        victim = i;
      }
    }
    if (victim == kNoShard) return;  // only the installing arena is live
    static MetricCounter* evictions =
        MetricsRegistry::Get().Counter("ads.shard.evictions");
    evictions->Add();
    resident_[victim].reset();
  }
}

StatusOr<const AdsBackend*> ShardedAdsSet::Resident(uint32_t s) const {
  last_used_[s] = ++tick_;
  if (resident_[s] != nullptr) return resident_[s].get();

  std::optional<StatusOr<std::unique_ptr<AdsBackend>>> staged;
  if (prefetcher_ != nullptr) {
    staged = prefetcher_->Take(s);
    static MetricCounter* hits =
        MetricsRegistry::Get().Counter("ads.shard.prefetch_hits");
    static MetricCounter* misses =
        MetricsRegistry::Get().Counter("ads.shard.prefetch_misses");
    (staged.has_value() ? hits : misses)->Add();
  }
  StatusOr<std::unique_ptr<AdsBackend>> loaded =
      staged.has_value() ? std::move(*staged) : load_ctx_->Load(s);
  if (!loaded.ok()) return loaded.status();
  EvictFor(s);
  resident_[s] = std::move(loaded).value();
  return resident_[s].get();
}

StatusOr<AdsArenaView> ShardedAdsSet::Range(uint32_t r) const {
  if (r >= shards_.size()) {
    return Status::InvalidArgument("shard range " + std::to_string(r) +
                                   " out of bounds");
  }
  auto arena = Resident(r);
  if (!arena.ok()) return arena.status();
  auto view = arena.value()->Range(0);
  if (!view.ok()) return view.status();
  AdsArenaView out = view.value();
  out.begin = shards_[r].begin;
  out.end = shards_[r].end;
  return out;
}

StatusOr<AdsView> ShardedAdsSet::ViewOf(NodeId v) const {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  auto range = Range(ShardOf(v));
  if (!range.ok()) return range.status();
  return range.value().of_global(v);
}

StatusOr<HipView> ShardedAdsSet::HipOf(NodeId v) const {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  auto range = Range(ShardOf(v));
  if (!range.ok()) return range.status();
  return range.value().hip_of_local(v - range.value().begin);
}

void ShardedAdsSet::Prefetch(uint32_t r) const {
  if (prefetcher_ == nullptr || r >= shards_.size()) return;
  // The hint names the next range a sweep will consume; widen it to the
  // configured lookahead window, skipping shards already resident.
  std::vector<uint32_t> wanted;
  uint64_t end = std::min<uint64_t>(
      shards_.size(), static_cast<uint64_t>(r) + prefetch_depth_);
  for (uint32_t s = r; s < end; ++s) {
    if (resident_[s] == nullptr) wanted.push_back(s);
  }
  if (!wanted.empty()) prefetcher_->Request(wanted);
}

uint64_t ShardedAdsSet::NumShardLoads() const {
  return load_ctx_ == nullptr ? 0 : load_ctx_->num_loads.value();
}

uint32_t ShardedAdsSet::NumResident() const {
  uint32_t live = 0;
  for (const auto& p : resident_) {
    if (p != nullptr) ++live;
  }
  return live;
}

}  // namespace hipads
