// Algorithm 2: node-centric ADS construction by local update propagation,
// simulated in synchronous rounds (the MapReduce / Pregel execution model
// the paper targets).
//
// Unlike the other builders, entries here are tentative: a node may insert
// an entry and later delete it (clean-up) when closer lower-rank entries
// arrive, or shrink an entry's distance when a shorter path is discovered.
// With epsilon == 0 the result is the exact canonical ADS set; with
// epsilon > 0 it is a (1+epsilon)-approximate ADS set, which provably caps
// the update overhead (Section 3).

#include <algorithm>
#include <cassert>

#include "ads/builders.h"
#include "graph/traversal.h"

namespace hipads {

namespace {

struct Message {
  NodeId target;
  NodeId node;
  uint32_t part;
  double rank;
  double dist;
};

// Mutable per-node ADS state for one pass: entries sorted by (dist, rank).
using EntryList = std::vector<AdsEntry>;

// True iff entry `a` is closer than the key (dist, node) under the
// canonical tie-broken order, with the (1+epsilon) slack deflating `a`'s
// distance requirement where a strict comparison is involved.
bool LexCloser(const AdsEntry& a, double dist, NodeId node, double slack) {
  if (a.dist * slack < dist) return true;
  return a.dist <= dist && (a.dist < dist || a.node < node);
}

// Removes entries dominated by >= k closer lower-rank entries. An entry e is
// dominated by ke iff ke.rank < e.rank and ke is closer under the tie-broken
// (distance, node id) order. In exact mode (slack == 1) this
// recanonicalizes the list; with slack > 1 eviction requires dominators to
// be decisively closer (ke.dist * slack <= e.dist), preserving the
// (1+epsilon)-approximate invariant.
size_t CleanUp(EntryList& entries, uint32_t k, double slack) {
  std::sort(entries.begin(), entries.end(), AdsEntryCloser);
  EntryList kept;
  kept.reserve(entries.size());
  size_t removed = 0;
  for (const AdsEntry& e : entries) {
    size_t dominators = 0;
    for (const AdsEntry& ke : kept) {
      bool closer = slack == 1.0
                        ? LexCloser(ke, e.dist, e.node, 1.0)
                        : ke.dist * slack <= e.dist;
      if (closer && ke.rank < e.rank) ++dominators;
    }
    if (dominators >= k) {
      ++removed;
    } else {
      kept.push_back(e);
    }
  }
  entries = std::move(kept);
  return removed;
}

void RunLocalUpdatesPass(const Graph& gt, uint32_t k, uint32_t part,
                         uint32_t perm, const RankAssignment& ranks,
                         const std::vector<bool>* is_source, double epsilon,
                         std::vector<std::vector<AdsEntry>>& out,
                         AdsBuildStats* stats) {
  NodeId n = gt.num_nodes();
  double slack = 1.0 + epsilon;
  std::vector<EntryList> ads(n);
  std::vector<Message> inbox;

  auto send_updates = [&](NodeId u, NodeId node, double rank, double dist,
                          std::vector<Message>& outbox) {
    for (const Arc& a : gt.OutArcs(u)) {
      outbox.push_back(
          Message{a.head, node, part, rank, dist + a.weight});
    }
  };

  // Initialization: each source holds itself at distance 0 and announces it.
  for (NodeId v = 0; v < n; ++v) {
    if (is_source != nullptr && !(*is_source)[v]) continue;
    double rv = ranks.rank(v, perm);
    ads[v].push_back(AdsEntry{v, part, rv, 0.0});
    if (stats != nullptr) ++stats->insertions;
    send_updates(v, v, rv, 0.0, inbox);
  }

  std::vector<Message> outbox;
  while (!inbox.empty()) {
    if (stats != nullptr) {
      ++stats->rounds;
      stats->relaxations += inbox.size();
    }
    outbox.clear();
    // Process this round's messages grouped by target, in canonical order so
    // that ties resolve deterministically.
    std::sort(inbox.begin(), inbox.end(),
              [](const Message& a, const Message& b) {
                if (a.target != b.target) return a.target < b.target;
                if (a.dist != b.dist) return a.dist < b.dist;
                return a.node < b.node;
              });
    for (const Message& m : inbox) {
      EntryList& list = ads[m.target];
      // Existing entry for this node?
      size_t existing = list.size();
      for (size_t i = 0; i < list.size(); ++i) {
        if (list[i].node == m.node) {
          existing = i;
          break;
        }
      }
      if (existing < list.size() && list[existing].dist <= m.dist) {
        continue;  // already known at an equal or shorter distance
      }
      // Insertion test: rank must beat the kth smallest rank among entries
      // that are closer under the tie-broken order (with the approximate
      // mode's distance slack making "closer" more inclusive, i.e.
      // insertion harder).
      BottomKSketch thr(k, ranks.sup());
      for (size_t i = 0; i < list.size(); ++i) {
        if (i == existing) continue;  // ignore the entry being replaced
        const AdsEntry& e = list[i];
        if (e.dist <= m.dist * slack &&
            (e.dist > m.dist || LexCloser(e, m.dist, m.node, 1.0))) {
          thr.Update(e.rank);
        }
      }
      if (m.rank >= thr.Threshold()) continue;
      // Accept: replace or insert, clean up, propagate.
      if (existing < list.size()) {
        list.erase(list.begin() + static_cast<ptrdiff_t>(existing));
        if (stats != nullptr) ++stats->deletions;
      }
      list.push_back(AdsEntry{m.node, part, m.rank, m.dist});
      if (stats != nullptr) ++stats->insertions;
      size_t removed = CleanUp(list, k, slack);
      if (stats != nullptr) stats->deletions += removed;
      // The inserted entry may itself have been removed by clean-up only if
      // it was dominated, which the insertion test excludes; propagate it.
      send_updates(m.target, m.node, m.rank, m.dist, outbox);
    }
    inbox.swap(outbox);
  }

  for (NodeId v = 0; v < n; ++v) {
    for (const AdsEntry& e : ads[v]) out[v].push_back(e);
  }
}

}  // namespace

AdsSet BuildAdsLocalUpdates(const Graph& g, uint32_t k, SketchFlavor flavor,
                            const RankAssignment& ranks, double epsilon,
                            AdsBuildStats* stats) {
  assert(k >= 1);
  assert(epsilon >= 0.0);
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);

  switch (flavor) {
    case SketchFlavor::kBottomK:
      RunLocalUpdatesPass(gt, k, /*part=*/0, /*perm=*/0, ranks, nullptr,
                          epsilon, out, stats);
      break;
    case SketchFlavor::kKMins:
      for (uint32_t p = 0; p < k; ++p) {
        RunLocalUpdatesPass(gt, 1, /*part=*/p, /*perm=*/p, ranks, nullptr,
                            epsilon, out, stats);
      }
      break;
    case SketchFlavor::kKPartition: {
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<bool> in_bucket(n, false);
        for (NodeId v = 0; v < n; ++v) {
          in_bucket[v] = BucketHash(ranks.seed(), v, k) == h;
        }
        RunLocalUpdatesPass(gt, 1, /*part=*/h, /*perm=*/0, ranks, &in_bucket,
                            epsilon, out, stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

AdsSet BuildAdsReference(const Graph& g, uint32_t k, SketchFlavor flavor,
                         const RankAssignment& ranks) {
  NodeId n = g.num_nodes();
  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.resize(n);
  // Distances from every node via repeated single-source computations on g.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<double> dist = ShortestPathDistances(g, v);
    std::vector<AdsEntry> candidates;
    for (NodeId u = 0; u < n; ++u) {
      if (dist[u] == kInfDist) continue;
      switch (flavor) {
        case SketchFlavor::kBottomK:
          candidates.push_back(AdsEntry{u, 0, ranks.rank(u, 0), dist[u]});
          break;
        case SketchFlavor::kKMins:
          for (uint32_t p = 0; p < k; ++p) {
            candidates.push_back(AdsEntry{u, p, ranks.rank(u, p), dist[u]});
          }
          break;
        case SketchFlavor::kKPartition:
          candidates.push_back(AdsEntry{
              u, BucketHash(ranks.seed(), u, k), ranks.rank(u, 0), dist[u]});
          break;
      }
    }
    switch (flavor) {
      case SketchFlavor::kBottomK:
        set.ads[v] = Ads::CanonicalBottomK(std::move(candidates), k,
                                           ranks.sup());
        break;
      case SketchFlavor::kKMins: {
        // k independent bottom-1 filters, one per rank assignment.
        std::vector<AdsEntry> kept;
        for (uint32_t p = 0; p < k; ++p) {
          std::vector<AdsEntry> per;
          for (const AdsEntry& e : candidates) {
            if (e.part == p) per.push_back(e);
          }
          Ads filtered = Ads::CanonicalBottomK(std::move(per), 1,
                                               ranks.sup());
          kept.insert(kept.end(), filtered.entries().begin(),
                      filtered.entries().end());
        }
        set.ads[v] = Ads(std::move(kept));
        break;
      }
      case SketchFlavor::kKPartition: {
        std::vector<AdsEntry> kept;
        for (uint32_t h = 0; h < k; ++h) {
          std::vector<AdsEntry> per;
          for (const AdsEntry& e : candidates) {
            if (e.part == h) per.push_back(e);
          }
          Ads filtered = Ads::CanonicalBottomK(std::move(per), 1,
                                               ranks.sup());
          kept.insert(kept.end(), filtered.entries().begin(),
                      filtered.entries().end());
        }
        set.ads[v] = Ads(std::move(kept));
        break;
      }
    }
  }
  return set;
}

}  // namespace hipads
