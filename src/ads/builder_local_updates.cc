// Algorithm 2: node-centric ADS construction by local update propagation,
// simulated in synchronous rounds (the MapReduce / Pregel execution model
// the paper targets).
//
// Unlike the other builders, entries here are tentative: a node may insert
// an entry and later delete it (clean-up) when closer lower-rank entries
// arrive, or shrink an entry's distance when a shorter path is discovered.
// With epsilon == 0 the result is the exact canonical ADS set; with
// epsilon > 0 it is a (1+epsilon)-approximate ADS set, which provably caps
// the update overhead (Section 3).

#include <algorithm>
#include <cassert>

#include "ads/builders.h"
#include "graph/traversal.h"
#include "util/parallel.h"

namespace hipads {

namespace {

struct Message {
  NodeId target;
  NodeId node;
  uint32_t part;
  double rank;
  double dist;
};

// Mutable per-node ADS state for one pass: entries sorted by (dist, rank).
using EntryList = std::vector<AdsEntry>;

// True iff entry `a` is closer than the key (dist, node) under the
// canonical tie-broken order, with the (1+epsilon) slack deflating `a`'s
// distance requirement where a strict comparison is involved.
bool LexCloser(const AdsEntry& a, double dist, NodeId node, double slack) {
  if (a.dist * slack < dist) return true;
  return a.dist <= dist && (a.dist < dist || a.node < node);
}

// Removes entries dominated by >= k closer lower-rank entries. An entry e is
// dominated by ke iff ke.rank < e.rank and ke is closer under the tie-broken
// (distance, node id) order. In exact mode (slack == 1) this
// recanonicalizes the list; with slack > 1 eviction requires dominators to
// be decisively closer (ke.dist * slack <= e.dist), preserving the
// (1+epsilon)-approximate invariant.
size_t CleanUp(EntryList& entries, uint32_t k, double slack) {
  std::sort(entries.begin(), entries.end(), AdsEntryCloser);
  EntryList kept;
  kept.reserve(entries.size());
  size_t removed = 0;
  for (const AdsEntry& e : entries) {
    size_t dominators = 0;
    for (const AdsEntry& ke : kept) {
      bool closer = slack == 1.0
                        ? LexCloser(ke, e.dist, e.node, 1.0)
                        : ke.dist * slack <= e.dist;
      if (closer && ke.rank < e.rank) ++dominators;
    }
    if (dominators >= k) {
      ++removed;
    } else {
      kept.push_back(e);
    }
  }
  entries = std::move(kept);
  return removed;
}

// Work a message-processing chunk counts locally; summed into the global
// AdsBuildStats after the round (integer sums are order-independent, so
// the totals match the sequential builder exactly).
struct RoundCounters {
  uint64_t insertions = 0;
  uint64_t deletions = 0;
};

// Chunk boundaries for one round's sorted messages: ~`chunks_wanted` even
// pieces, each boundary advanced to the next target-node change so no
// target's message group ever spans two chunks. The decomposition depends
// only on the (canonically sorted) inbox, never on thread scheduling.
std::vector<size_t> TargetAlignedBounds(const std::vector<Message>& inbox,
                                        uint32_t chunks_wanted) {
  std::vector<size_t> bounds{0};
  if (chunks_wanted > 1 && inbox.size() > 1) {
    size_t step = (inbox.size() + chunks_wanted - 1) / chunks_wanted;
    for (uint32_t c = 1; c < chunks_wanted; ++c) {
      size_t pos = std::min(inbox.size(), static_cast<size_t>(c) * step);
      while (pos < inbox.size() && inbox[pos].target == inbox[pos - 1].target)
        ++pos;
      if (pos > bounds.back() && pos < inbox.size()) bounds.push_back(pos);
    }
  }
  bounds.push_back(inbox.size());
  return bounds;
}

// Processes the sorted messages [begin, end) of one round — a range that
// never splits a target's group. Mutates only ads[t] for targets t inside
// the range and appends propagations to `outbox`, so disjoint chunks are
// independent: running them on pool threads replays exactly the sequential
// per-target decisions.
void ProcessMessages(const Graph& gt, uint32_t k, uint32_t part,
                     const RankAssignment& ranks, double slack,
                     const std::vector<Message>& inbox, size_t begin,
                     size_t end, std::vector<EntryList>& ads,
                     std::vector<Message>& outbox, RoundCounters& counters) {
  for (size_t idx = begin; idx < end; ++idx) {
    const Message& m = inbox[idx];
    EntryList& list = ads[m.target];
    // Existing entry for this node?
    size_t existing = list.size();
    for (size_t i = 0; i < list.size(); ++i) {
      if (list[i].node == m.node) {
        existing = i;
        break;
      }
    }
    if (existing < list.size() && list[existing].dist <= m.dist) {
      continue;  // already known at an equal or shorter distance
    }
    // Insertion test: rank must beat the kth smallest rank among entries
    // that are closer under the tie-broken order (with the approximate
    // mode's distance slack making "closer" more inclusive, i.e.
    // insertion harder).
    BottomKSketch thr(k, ranks.sup());
    for (size_t i = 0; i < list.size(); ++i) {
      if (i == existing) continue;  // ignore the entry being replaced
      const AdsEntry& e = list[i];
      if (e.dist <= m.dist * slack &&
          (e.dist > m.dist || LexCloser(e, m.dist, m.node, 1.0))) {
        thr.Update(e.rank);
      }
    }
    if (m.rank >= thr.Threshold()) continue;
    // Accept: replace or insert, clean up, propagate.
    if (existing < list.size()) {
      list.erase(list.begin() + static_cast<ptrdiff_t>(existing));
      ++counters.deletions;
    }
    list.push_back(AdsEntry{m.node, part, m.rank, m.dist});
    ++counters.insertions;
    counters.deletions += CleanUp(list, k, slack);
    // The inserted entry may itself have been removed by clean-up only if
    // it was dominated, which the insertion test excludes; propagate it.
    for (const Arc& a : gt.OutArcs(m.target)) {
      outbox.push_back(Message{a.head, m.node, part, m.rank,
                               m.dist + a.weight});
    }
  }
}

// One pass of the synchronous simulation. With a pool, each round's
// messages are processed in target-aligned chunks on the pool threads;
// chunk outboxes are concatenated in chunk order and re-sorted canonically
// next round, so the output (and every work counter) is identical to the
// sequential pass for any thread count.
void RunLocalUpdatesPass(const Graph& gt, uint32_t k, uint32_t part,
                         uint32_t perm, const RankAssignment& ranks,
                         const std::vector<bool>* is_source, double epsilon,
                         ThreadPool* pool,
                         std::vector<std::vector<AdsEntry>>& out,
                         AdsBuildStats* stats) {
  NodeId n = gt.num_nodes();
  double slack = 1.0 + epsilon;
  std::vector<EntryList> ads(n);
  std::vector<Message> inbox;

  // Initialization: each source holds itself at distance 0 and announces it.
  for (NodeId v = 0; v < n; ++v) {
    if (is_source != nullptr && !(*is_source)[v]) continue;
    double rv = ranks.rank(v, perm);
    ads[v].push_back(AdsEntry{v, part, rv, 0.0});
    if (stats != nullptr) ++stats->insertions;
    for (const Arc& a : gt.OutArcs(v)) {
      inbox.push_back(Message{a.head, v, part, rv, a.weight});
    }
  }

  while (!inbox.empty()) {
    if (stats != nullptr) {
      ++stats->rounds;
      stats->relaxations += inbox.size();
    }
    // Process this round's messages grouped by target, in canonical order so
    // that ties resolve deterministically. The sort key is total over
    // distinct updates (messages equal on (target, dist, node) are fully
    // identical — rank and part are functions of the node within a pass),
    // so the sorted order does not depend on the producing chunk order.
    std::sort(inbox.begin(), inbox.end(),
              [](const Message& a, const Message& b) {
                if (a.target != b.target) return a.target < b.target;
                if (a.dist != b.dist) return a.dist < b.dist;
                return a.node < b.node;
              });
    uint32_t chunks_wanted = pool != nullptr ? pool->num_threads() : 1;
    std::vector<size_t> bounds = TargetAlignedBounds(inbox, chunks_wanted);
    size_t chunks = bounds.size() - 1;
    std::vector<std::vector<Message>> outboxes(chunks);
    std::vector<RoundCounters> counters(chunks);
    auto process = [&](size_t begin, size_t end, uint32_t chunk) {
      ProcessMessages(gt, k, part, ranks, slack, inbox, begin, end, ads,
                      outboxes[chunk], counters[chunk]);
    };
    if (pool != nullptr && chunks > 1) {
      pool->ParallelRanges(bounds, process);
    } else {
      for (size_t c = 0; c < chunks; ++c) {
        process(bounds[c], bounds[c + 1], static_cast<uint32_t>(c));
      }
    }
    inbox.clear();
    for (size_t c = 0; c < chunks; ++c) {
      inbox.insert(inbox.end(), outboxes[c].begin(), outboxes[c].end());
      if (stats != nullptr) {
        stats->insertions += counters[c].insertions;
        stats->deletions += counters[c].deletions;
      }
    }
  }

  for (NodeId v = 0; v < n; ++v) {
    for (const AdsEntry& e : ads[v]) out[v].push_back(e);
  }
}

AdsSet BuildAdsLocalUpdatesImpl(const Graph& g, uint32_t k,
                                SketchFlavor flavor,
                                const RankAssignment& ranks, double epsilon,
                                ThreadPool* pool, AdsBuildStats* stats) {
  assert(k >= 1);
  assert(epsilon >= 0.0);
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);

  switch (flavor) {
    case SketchFlavor::kBottomK:
      RunLocalUpdatesPass(gt, k, /*part=*/0, /*perm=*/0, ranks, nullptr,
                          epsilon, pool, out, stats);
      break;
    case SketchFlavor::kKMins:
      for (uint32_t p = 0; p < k; ++p) {
        RunLocalUpdatesPass(gt, 1, /*part=*/p, /*perm=*/p, ranks, nullptr,
                            epsilon, pool, out, stats);
      }
      break;
    case SketchFlavor::kKPartition: {
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<bool> in_bucket(n, false);
        for (NodeId v = 0; v < n; ++v) {
          in_bucket[v] = BucketHash(ranks.seed(), v, k) == h;
        }
        RunLocalUpdatesPass(gt, 1, /*part=*/h, /*perm=*/0, ranks, &in_bucket,
                            epsilon, pool, out, stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

}  // namespace

AdsSet BuildAdsLocalUpdates(const Graph& g, uint32_t k, SketchFlavor flavor,
                            const RankAssignment& ranks, double epsilon,
                            AdsBuildStats* stats) {
  return BuildAdsLocalUpdatesImpl(g, k, flavor, ranks, epsilon,
                                  /*pool=*/nullptr, stats);
}

AdsSet BuildAdsLocalUpdatesParallel(const Graph& g, uint32_t k,
                                    SketchFlavor flavor,
                                    const RankAssignment& ranks,
                                    double epsilon, uint32_t num_threads,
                                    AdsBuildStats* stats) {
  ThreadPool pool(num_threads);
  if (pool.num_threads() <= 1) {
    return BuildAdsLocalUpdatesImpl(g, k, flavor, ranks, epsilon,
                                    /*pool=*/nullptr, stats);
  }
  return BuildAdsLocalUpdatesImpl(g, k, flavor, ranks, epsilon, &pool, stats);
}

AdsSet BuildAdsReference(const Graph& g, uint32_t k, SketchFlavor flavor,
                         const RankAssignment& ranks) {
  NodeId n = g.num_nodes();
  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.resize(n);
  // Distances from every node via repeated single-source computations on g.
  for (NodeId v = 0; v < n; ++v) {
    std::vector<double> dist = ShortestPathDistances(g, v);
    std::vector<AdsEntry> candidates;
    for (NodeId u = 0; u < n; ++u) {
      if (dist[u] == kInfDist) continue;
      switch (flavor) {
        case SketchFlavor::kBottomK:
          candidates.push_back(AdsEntry{u, 0, ranks.rank(u, 0), dist[u]});
          break;
        case SketchFlavor::kKMins:
          for (uint32_t p = 0; p < k; ++p) {
            candidates.push_back(AdsEntry{u, p, ranks.rank(u, p), dist[u]});
          }
          break;
        case SketchFlavor::kKPartition:
          candidates.push_back(AdsEntry{
              u, BucketHash(ranks.seed(), u, k), ranks.rank(u, 0), dist[u]});
          break;
      }
    }
    switch (flavor) {
      case SketchFlavor::kBottomK:
        set.ads[v] = Ads::CanonicalBottomK(std::move(candidates), k,
                                           ranks.sup());
        break;
      case SketchFlavor::kKMins: {
        // k independent bottom-1 filters, one per rank assignment.
        std::vector<AdsEntry> kept;
        for (uint32_t p = 0; p < k; ++p) {
          std::vector<AdsEntry> per;
          for (const AdsEntry& e : candidates) {
            if (e.part == p) per.push_back(e);
          }
          Ads filtered = Ads::CanonicalBottomK(std::move(per), 1,
                                               ranks.sup());
          kept.insert(kept.end(), filtered.entries().begin(),
                      filtered.entries().end());
        }
        set.ads[v] = Ads(std::move(kept));
        break;
      }
      case SketchFlavor::kKPartition: {
        std::vector<AdsEntry> kept;
        for (uint32_t h = 0; h < k; ++h) {
          std::vector<AdsEntry> per;
          for (const AdsEntry& e : candidates) {
            if (e.part == h) per.push_back(e);
          }
          Ads filtered = Ads::CanonicalBottomK(std::move(per), 1,
                                               ranks.sup());
          kept.insert(kept.end(), filtered.entries().begin(),
                      filtered.entries().end());
        }
        set.ads[v] = Ads(std::move(kept));
        break;
      }
    }
  }
  return set;
}

}  // namespace hipads
