#include "ads/sweep.h"

#include <algorithm>
#include <cstring>

#include "util/parallel.h"

namespace hipads {

namespace {

// Nodes per executor block: large enough to amortize pool scheduling,
// small enough to bound the block's live HipEstimator buffers (a block's
// estimators are reduced and recycled before the next block starts). The
// value does not affect results — per-node outputs are independent and
// the Reduce phase folds nodes in node order across block boundaries.
constexpr size_t kSweepBlock = 4096;

AdsView ViewOf(const AdsSet& set, NodeId v) { return set.of(v).view(); }
AdsView ViewOf(const FlatAdsSet& set, NodeId v) { return set.of(v); }

// Adapter presenting one backend range to the executor with the same
// member surface as AdsSet/FlatAdsSet (k/flavor/ranks + per-node views,
// node ids local to the range). Sharing the executor template is what
// makes backend results bitwise identical to the single-arena sweeps.
struct ArenaSet {
  AdsArenaView arena;
  SketchFlavor flavor;
  uint32_t k;
  const RankAssignment& ranks;
  size_t num_nodes() const { return arena.num_nodes(); }
};
AdsView ViewOf(const ArenaSet& set, NodeId v) { return set.arena.of_local(v); }

bool AnyNeedsReduce(const SweepPlan& plan) {
  for (SweepCollector* c : plan.collectors()) {
    if (c->NeedsReduce()) return true;
  }
  return false;
}

// The fused sweep over one arena: per block, construct each node's
// HipEstimator once (in parallel, outputs indexed by block slot), feed
// every collector's Map from it, then hand the block's estimators to
// every collector's Reduce in node order. When no collector reduces, the
// block buffer is skipped entirely: each estimator lives on the stack
// just long enough for the Map calls, so a plan of per-node collectors
// sweeps with O(threads) peak memory instead of O(block). `global_begin`
// offsets the arena-local node ids so a sharded backend's ranges chain
// seamlessly.
template <typename SetT>
void SweepArena(const SetT& set, NodeId global_begin, SweepPlan& plan,
                ThreadPool& pool, std::vector<HipEstimator>& block) {
  size_t n = set.num_nodes();
  if (!AnyNeedsReduce(plan)) {
    pool.ParallelFor(n, [&](size_t begin, size_t end, uint32_t) {
      for (size_t i = begin; i < end; ++i) {
        NodeId local = static_cast<NodeId>(i);
        NodeId v = global_begin + local;
        HipEstimator est(ViewOf(set, local), set.k, set.flavor, set.ranks);
        for (SweepCollector* c : plan.collectors()) c->Map(v, est);
      }
    });
    return;
  }
  for (size_t block_begin = 0; block_begin < n; block_begin += kSweepBlock) {
    size_t count = std::min(n - block_begin, kSweepBlock);
    if (block.size() < count) block.resize(count);
    pool.ParallelFor(count, [&](size_t begin, size_t end, uint32_t) {
      for (size_t i = begin; i < end; ++i) {
        NodeId local = static_cast<NodeId>(block_begin + i);
        NodeId v = global_begin + local;
        block[i] = HipEstimator(ViewOf(set, local), set.k, set.flavor,
                                set.ranks);
        for (SweepCollector* c : plan.collectors()) c->Map(v, block[i]);
      }
    });
    std::span<const HipEstimator> ests(block.data(), count);
    for (SweepCollector* c : plan.collectors()) {
      c->Reduce(global_begin + static_cast<NodeId>(block_begin), ests);
    }
  }
}

template <typename SetT>
void RunSweepSingleArena(const SetT& set, SweepPlan& plan,
                         uint32_t num_threads) {
  for (SweepCollector* c : plan.collectors()) c->Begin(set.num_nodes());
  if (plan.empty()) return;
  ThreadPool pool(num_threads);
  std::vector<HipEstimator> block;
  SweepArena(set, /*global_begin=*/0, plan, pool, block);
}

}  // namespace

SweepCollector::~SweepCollector() = default;
void SweepCollector::Begin(size_t /*num_nodes*/) {}
void SweepCollector::Map(NodeId /*v*/, const HipEstimator& /*est*/) {}
void SweepCollector::Reduce(NodeId /*first*/,
                            std::span<const HipEstimator> /*ests*/) {}
bool SweepCollector::NeedsReduce() const { return true; }

Status SweepCollector::EncodePartial(NodeId /*begin*/, NodeId /*end*/,
                                     std::string* /*out*/) const {
  return Status::InvalidArgument(
      "collector does not support distributed partial state");
}

Status SweepCollector::AbsorbPartial(NodeId /*begin*/, NodeId /*end*/,
                                     std::string_view /*data*/) {
  return Status::InvalidArgument(
      "collector does not support distributed partial state");
}

void PerNodeCollector::Begin(size_t num_nodes) {
  values_.assign(num_nodes, 0.0);
}

void PerNodeCollector::Map(NodeId v, const HipEstimator& est) {
  values_[v] = fn_(est);
}

bool PerNodeCollector::NeedsReduce() const { return false; }

Status PerNodeCollector::EncodePartial(NodeId begin, NodeId end,
                                       std::string* out) const {
  if (begin > end || end > values_.size()) {
    return Status::InvalidArgument("partial range outside collected nodes");
  }
  out->clear();
  if (begin < end) {
    out->assign(reinterpret_cast<const char*>(values_.data() + begin),
                (end - begin) * sizeof(double));
  }
  return Status::Ok();
}

Status PerNodeCollector::AbsorbPartial(NodeId begin, NodeId end,
                                       std::string_view data) {
  if (begin > end || end > values_.size()) {
    return Status::InvalidArgument("partial range outside collected nodes");
  }
  size_t count = end - begin;
  if (data.size() != count * sizeof(double)) {
    return Status::Corruption("per-node partial size does not match range");
  }
  if (!data.empty()) {
    std::memcpy(values_.data() + begin, data.data(), data.size());
  }
  return Status::Ok();
}

ClosenessCollector::ClosenessCollector(std::function<double(double)> alpha,
                                       std::function<double(NodeId)> beta)
    : PerNodeCollector(
          [alpha = std::move(alpha),
           beta = std::move(beta)](const HipEstimator& est) {
            return est.Closeness(alpha, beta);
          }) {}

DistanceSumCollector::DistanceSumCollector()
    : PerNodeCollector(
          [](const HipEstimator& est) { return est.DistanceSum(); }) {}

HarmonicCentralityCollector::HarmonicCentralityCollector()
    : PerNodeCollector([](const HipEstimator& est) {
        return est.HarmonicCentrality();
      }) {}

NeighborhoodSizeCollector::NeighborhoodSizeCollector(double d)
    : PerNodeCollector([d](const HipEstimator& est) {
        return est.NeighborhoodCardinality(d);
      }) {}

ReachableCountCollector::ReachableCountCollector()
    : PerNodeCollector(
          [](const HipEstimator& est) { return est.ReachableCount(); }) {}

DistanceQuantileCollector::DistanceQuantileCollector(double q)
    : PerNodeCollector([q](const HipEstimator& est) {
        return est.DistanceQuantile(q);
      }) {}

QgCollector::QgCollector(std::function<double(NodeId, double)> g)
    : PerNodeCollector([g = std::move(g)](const HipEstimator& est) {
        return est.Qg(g);
      }) {}

std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count) {
  std::vector<NodeId> order(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) order[v] = v;
  uint32_t take = std::min<uint32_t>(count, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

std::vector<NodeId> TopKCollector::TopNodes() const {
  return TopKNodes(values(), count_);
}

void DistanceHistogramCollector::Begin(size_t /*num_nodes*/) {
  hist_.clear();
  stream_.clear();
}

void DistanceHistogramCollector::Fold(double dist, double weight) {
  hist_[dist] += weight;
  if (capture_) stream_.emplace_back(dist, weight);
}

void DistanceHistogramCollector::Reduce(NodeId /*first*/,
                                        std::span<const HipEstimator> ests) {
  // Node-order fold of each node's HIP entries. The estimator's entries
  // are exactly ComputeHipWeights' output, so this accumulation is the
  // same sequence of additions the standalone distance-distribution
  // sweep performs — bitwise identical results.
  for (const HipEstimator& est : ests) {
    for (const HipEntry& e : est.entries()) {
      if (e.dist > 0.0) Fold(e.dist, e.weight);
    }
  }
}

Status DistanceHistogramCollector::EncodePartial(NodeId /*begin*/,
                                                 NodeId /*end*/,
                                                 std::string* out) const {
  if (!capture_) {
    return Status::InvalidArgument(
        "distance histogram partials require EnableCapture before the sweep");
  }
  out->clear();
  out->reserve(stream_.size() * 2 * sizeof(double));
  for (const auto& [dist, weight] : stream_) {
    out->append(reinterpret_cast<const char*>(&dist), sizeof(double));
    out->append(reinterpret_cast<const char*>(&weight), sizeof(double));
  }
  return Status::Ok();
}

Status DistanceHistogramCollector::AbsorbPartial(NodeId /*begin*/,
                                                 NodeId /*end*/,
                                                 std::string_view data) {
  if (data.size() % (2 * sizeof(double)) != 0) {
    return Status::Corruption("histogram partial is not (dist, weight) pairs");
  }
  // Replays the range's additions in their recorded order; across ranges
  // absorbed in node order this reproduces the single-process fold bit for
  // bit. Folding through Fold() keeps the stream capture alive, so a
  // gathering router can re-encode its merged state for its own clients.
  for (size_t pos = 0; pos < data.size(); pos += 2 * sizeof(double)) {
    double dist, weight;
    std::memcpy(&dist, data.data() + pos, sizeof(double));
    std::memcpy(&weight, data.data() + pos + sizeof(double), sizeof(double));
    if (!(dist > 0.0) || !(weight >= 0.0)) {
      return Status::Corruption("histogram partial entry out of domain");
    }
    Fold(dist, weight);
  }
  return Status::Ok();
}

std::map<double, double> DistanceHistogramCollector::NeighborhoodFunction()
    const {
  std::map<double, double> nf = hist_;
  double running = 0.0;
  for (auto& [d, value] : nf) {
    running += value;
    value = running;
  }
  return nf;
}

double DistanceHistogramCollector::EffectiveDiameter(double quantile) const {
  std::map<double, double> nf = NeighborhoodFunction();
  if (nf.empty()) return 0.0;
  double total = nf.rbegin()->second;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) return d;
  }
  return nf.rbegin()->first;
}

double DistanceHistogramCollector::MeanDistance() const {
  double weight = 0.0, weighted_dist = 0.0;
  for (const auto& [d, pairs] : hist_) {
    weight += pairs;
    weighted_dist += d * pairs;
  }
  return weight > 0.0 ? weighted_dist / weight : 0.0;
}

SweepPlan& SweepPlan::Add(SweepCollector* collector) {
  collectors_.push_back(collector);
  return *this;
}

void RunSweep(const AdsSet& set, SweepPlan& plan, uint32_t num_threads) {
  RunSweepSingleArena(set, plan, num_threads);
}

void RunSweep(const FlatAdsSet& set, SweepPlan& plan, uint32_t num_threads) {
  RunSweepSingleArena(set, plan, num_threads);
}

Status RunSweep(const AdsBackend& set, SweepPlan& plan,
                uint32_t num_threads) {
  for (SweepCollector* c : plan.collectors()) c->Begin(set.num_nodes());
  if (plan.empty()) return Status::Ok();
  ThreadPool pool(num_threads);
  std::vector<HipEstimator> block;
  for (uint32_t r = 0; r < set.NumRanges(); ++r) {
    auto range = set.Range(r);
    if (!range.ok()) return range.status();
    if (r + 1 < set.NumRanges()) set.Prefetch(r + 1);
    ArenaSet arena{range.value(), set.flavor(), set.k(), set.ranks()};
    SweepArena(arena, range.value().begin, plan, pool, block);
  }
  return Status::Ok();
}

}  // namespace hipads
