#include "ads/sweep.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/metrics.h"
#include "util/parallel.h"

namespace hipads {

namespace {

// Sweep volume counters (counts only — HL001/HL006 keep wall-clock
// instruments out of src/ads). Totals are thread-count invariant: nodes
// is added once per arena, entries accumulate per chunk but sum to the
// same per-node total under any chunk decomposition.
struct SweepCounters {
  MetricCounter* nodes;
  MetricCounter* entries;
};
SweepCounters& Counters() {
  static SweepCounters c{MetricsRegistry::Get().Counter("ads.sweep.nodes"),
                         MetricsRegistry::Get().Counter("ads.sweep.entries")};
  return c;
}

// Nodes per executor block: large enough to amortize pool scheduling,
// small enough to bound the block's live HipEstimator buffers (a block's
// estimators are reduced and recycled before the next block starts). The
// value does not affect results — per-node outputs are independent and
// the Reduce phase folds nodes in node order across block boundaries.
constexpr size_t kSweepBlock = 4096;

AdsView ViewOf(const AdsSet& set, NodeId v) { return set.of(v).view(); }
AdsView ViewOf(const FlatAdsSet& set, NodeId v) { return set.of(v); }

// Precomputed HIP weights of node v, when the set's storage carries them
// (absent HipView = run the scan). Only the flat arena and backend ranges
// can hold the aligned arrays; per-node-vector AdsSets never do.
HipView HipViewOf(const AdsSet& /*set*/, NodeId /*v*/) { return HipView{}; }
HipView HipViewOf(const FlatAdsSet& set, NodeId v) {
  if (!set.has_hip()) return HipView{};
  return HipView{set.hip_tau.data() + set.offsets[v],
                 set.hip_weight.data() + set.offsets[v]};
}

// Adapter presenting one backend range to the executor with the same
// member surface as AdsSet/FlatAdsSet (k/flavor/ranks + per-node views,
// node ids local to the range). Sharing the executor template is what
// makes backend results bitwise identical to the single-arena sweeps.
struct ArenaSet {
  AdsArenaView arena;
  SketchFlavor flavor;
  uint32_t k;
  const RankAssignment& ranks;
  size_t num_nodes() const { return arena.num_nodes(); }
};
AdsView ViewOf(const ArenaSet& set, NodeId v) { return set.arena.of_local(v); }
HipView HipViewOf(const ArenaSet& set, NodeId v) {
  return set.arena.hip_of_local(v);
}

// One node's estimator, cheapest mode first: wrap the storage-resident
// weights when present (no scan, no allocation), otherwise scan into the
// caller's reusable scratch (no allocation after warm-up). Both modes are
// bitwise identical to each other and to the old allocating constructor.
template <typename SetT>
HipEstimator MakeEstimator(const SetT& set, NodeId local,
                           HipScratch* scratch) {
  HipView hip = HipViewOf(set, local);
  if (hip.present()) {
    return HipEstimator(ViewOf(set, local), hip.tau, hip.weight);
  }
  return HipEstimator(ViewOf(set, local), set.k, set.flavor, set.ranks,
                      scratch);
}

// Reusable executor state, alive across the ranges of a backend sweep:
// the reduce path's block of estimators plus the per-slot scratches that
// back their scan fallback, and the no-reduce path's per-chunk scratches.
struct SweepBuffers {
  std::vector<HipEstimator> block;
  std::vector<HipScratch> block_scratch;  // parallel to `block`
  std::vector<HipScratch> chunk_scratch;  // indexed by ParallelFor chunk
};

bool AnyNeedsReduce(const SweepPlan& plan) {
  for (SweepCollector* c : plan.collectors()) {
    if (c->NeedsReduce()) return true;
  }
  return false;
}

// The fused sweep over one arena: per block, construct each node's
// HipEstimator once (in parallel, outputs indexed by block slot), feed
// every collector's Map from it, then hand the block's estimators to
// every collector's Reduce in node order. When no collector reduces, the
// block buffer is skipped entirely: each estimator lives on the stack
// just long enough for the Map calls, so a plan of per-node collectors
// sweeps with O(threads) peak memory instead of O(block). `global_begin`
// offsets the arena-local node ids so a sharded backend's ranges chain
// seamlessly.
template <typename SetT>
void SweepArena(const SetT& set, NodeId global_begin, SweepPlan& plan,
                ThreadPool& pool, SweepBuffers& buffers) {
  size_t n = set.num_nodes();
  Counters().nodes->Add(n);
  if (!AnyNeedsReduce(plan)) {
    // Each chunk reuses one scratch: the estimator is consumed by the Map
    // calls before the next node's scan overwrites the scratch. Chunk
    // decomposition is static, so scratch reuse cannot change results.
    if (buffers.chunk_scratch.size() < pool.num_threads()) {
      buffers.chunk_scratch.resize(pool.num_threads());
    }
    pool.ParallelFor(n, [&](size_t begin, size_t end, uint32_t chunk) {
      HipScratch& scratch = buffers.chunk_scratch[chunk];
      uint64_t chunk_entries = 0;
      for (size_t i = begin; i < end; ++i) {
        NodeId local = static_cast<NodeId>(i);
        NodeId v = global_begin + local;
        chunk_entries += ViewOf(set, local).size();
        HipEstimator est = MakeEstimator(set, local, &scratch);
        for (SweepCollector* c : plan.collectors()) c->Map(v, est);
      }
      Counters().entries->Add(chunk_entries);
    });
    return;
  }
  std::vector<HipEstimator>& block = buffers.block;
  for (size_t block_begin = 0; block_begin < n; block_begin += kSweepBlock) {
    size_t count = std::min(n - block_begin, kSweepBlock);
    if (block.size() < count) block.resize(count);
    if (buffers.block_scratch.size() < count) {
      buffers.block_scratch.resize(count);
    }
    pool.ParallelFor(count, [&](size_t begin, size_t end, uint32_t) {
      uint64_t chunk_entries = 0;
      for (size_t i = begin; i < end; ++i) {
        NodeId local = static_cast<NodeId>(block_begin + i);
        NodeId v = global_begin + local;
        chunk_entries += ViewOf(set, local).size();
        // A block's estimators stay live until Reduce, so each slot needs
        // its own scratch (reused across blocks — allocation-free once
        // warm). Slots are block-indexed, never thread-indexed.
        block[i] = MakeEstimator(set, local, &buffers.block_scratch[i]);
        for (SweepCollector* c : plan.collectors()) c->Map(v, block[i]);
      }
      Counters().entries->Add(chunk_entries);
    });
    std::span<const HipEstimator> ests(block.data(), count);
    for (SweepCollector* c : plan.collectors()) {
      c->Reduce(global_begin + static_cast<NodeId>(block_begin), ests);
    }
  }
}

template <typename SetT>
void RunSweepSingleArena(const SetT& set, SweepPlan& plan,
                         uint32_t num_threads) {
  for (SweepCollector* c : plan.collectors()) c->Begin(set.num_nodes());
  if (plan.empty()) return;
  ThreadPool pool(num_threads);
  SweepBuffers buffers;
  SweepArena(set, /*global_begin=*/0, plan, pool, buffers);
}

}  // namespace

SweepCollector::~SweepCollector() = default;
void SweepCollector::Begin(size_t /*num_nodes*/) {}
void SweepCollector::Map(NodeId /*v*/, const HipEstimator& /*est*/) {}
void SweepCollector::Reduce(NodeId /*first*/,
                            std::span<const HipEstimator> /*ests*/) {}
bool SweepCollector::NeedsReduce() const { return true; }

Status SweepCollector::EncodePartial(NodeId /*begin*/, NodeId /*end*/,
                                     std::string* /*out*/) const {
  return Status::InvalidArgument(
      "collector does not support distributed partial state");
}

Status SweepCollector::AbsorbPartial(NodeId /*begin*/, NodeId /*end*/,
                                     std::string_view /*data*/) {
  return Status::InvalidArgument(
      "collector does not support distributed partial state");
}

void PerNodeCollector::Begin(size_t num_nodes) {
  values_.assign(num_nodes, 0.0);
}

void PerNodeCollector::Map(NodeId v, const HipEstimator& est) {
  values_[v] = fn_(est);
}

bool PerNodeCollector::NeedsReduce() const { return false; }

Status PerNodeCollector::EncodePartial(NodeId begin, NodeId end,
                                       std::string* out) const {
  if (begin > end || end > values_.size()) {
    return Status::InvalidArgument("partial range outside collected nodes");
  }
  out->clear();
  if (begin < end) {
    out->assign(reinterpret_cast<const char*>(values_.data() + begin),
                (end - begin) * sizeof(double));
  }
  return Status::Ok();
}

Status PerNodeCollector::AbsorbPartial(NodeId begin, NodeId end,
                                       std::string_view data) {
  if (begin > end || end > values_.size()) {
    return Status::InvalidArgument("partial range outside collected nodes");
  }
  size_t count = end - begin;
  if (data.size() != count * sizeof(double)) {
    return Status::Corruption("per-node partial size does not match range");
  }
  if (!data.empty()) {
    std::memcpy(values_.data() + begin, data.data(), data.size());
  }
  return Status::Ok();
}

ClosenessCollector::ClosenessCollector(std::function<double(double)> alpha,
                                       std::function<double(NodeId)> beta)
    : PerNodeCollector(
          [alpha = std::move(alpha),
           beta = std::move(beta)](const HipEstimator& est) {
            return est.Closeness(alpha, beta);
          }) {}

DistanceSumCollector::DistanceSumCollector()
    : PerNodeCollector(
          [](const HipEstimator& est) { return est.DistanceSum(); }) {}

HarmonicCentralityCollector::HarmonicCentralityCollector()
    : PerNodeCollector([](const HipEstimator& est) {
        return est.HarmonicCentrality();
      }) {}

NeighborhoodSizeCollector::NeighborhoodSizeCollector(double d)
    : PerNodeCollector([d](const HipEstimator& est) {
        return est.NeighborhoodCardinality(d);
      }) {}

ReachableCountCollector::ReachableCountCollector()
    : PerNodeCollector(
          [](const HipEstimator& est) { return est.ReachableCount(); }) {}

DistanceQuantileCollector::DistanceQuantileCollector(double q)
    : PerNodeCollector([q](const HipEstimator& est) {
        return est.DistanceQuantile(q);
      }) {}

QgCollector::QgCollector(std::function<double(NodeId, double)> g)
    : PerNodeCollector([g = std::move(g)](const HipEstimator& est) {
        return est.Qg(g);
      }) {}

std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count) {
  std::vector<NodeId> order(scores.size());
  for (NodeId v = 0; v < scores.size(); ++v) order[v] = v;
  uint32_t take = std::min<uint32_t>(count, order.size());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

std::vector<NodeId> TopKCollector::TopNodes() const {
  return TopKNodes(values(), count_);
}

void DistanceHistogramCollector::Begin(size_t /*num_nodes*/) {
  acc_.clear();
}

void DistanceHistogramCollector::Fold(double dist, double weight) {
  acc_[dist].Add(weight);
}

void DistanceHistogramCollector::Reduce(NodeId /*first*/,
                                        std::span<const HipEstimator> ests) {
  // Node-order fold of each node's HIP entries. Accumulation is exact, so
  // the order is immaterial to results; keeping the fold in the
  // sequential Reduce phase is what makes the shared acc_ map safe.
  for (const HipEstimator& est : ests) {
    est.ForEachEntry([this](const HipEntry& e) {
      if (e.dist > 0.0) Fold(e.dist, e.weight);
    });
  }
}

Status DistanceHistogramCollector::EncodePartial(NodeId /*begin*/,
                                                 NodeId /*end*/,
                                                 std::string* out) const {
  // u64 distance count, then per distance: f64 dist + the exact sum's
  // digit window. O(distinct distances), not O(HIP entries).
  out->clear();
  uint64_t count = acc_.size();
  out->append(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& [dist, sum] : acc_) {
    out->append(reinterpret_cast<const char*>(&dist), sizeof(double));
    sum.EncodeTo(out);
  }
  return Status::Ok();
}

Status DistanceHistogramCollector::AbsorbPartial(NodeId /*begin*/,
                                                 NodeId /*end*/,
                                                 std::string_view data) {
  if (data.size() < sizeof(uint64_t)) {
    return Status::Corruption("histogram partial shorter than its header");
  }
  uint64_t count;
  std::memcpy(&count, data.data(), sizeof(count));
  data.remove_prefix(sizeof(count));
  // Every entry needs at least the distance plus an empty digit window, so
  // an absurd count is rejected before any allocation.
  if (count > data.size() / (sizeof(double) + ExactSum::kWireHeaderBytes)) {
    return Status::Corruption("histogram partial count exceeds payload");
  }
  // Exact merges commute, but the absorbed bytes come from the network:
  // stage into a scratch map and install only if the whole partial parses,
  // so a corrupt tail cannot leave half-merged state behind.
  std::map<double, ExactSum> staged;
  double prev = 0.0;
  for (uint64_t i = 0; i < count; ++i) {
    if (data.size() < sizeof(double)) {
      return Status::Corruption("histogram partial entry truncated");
    }
    double dist;
    std::memcpy(&dist, data.data(), sizeof(double));
    data.remove_prefix(sizeof(double));
    if (!(dist > 0.0) || !std::isfinite(dist) || !(dist > prev)) {
      return Status::Corruption("histogram partial distance out of domain");
    }
    prev = dist;
    size_t consumed = 0;
    if (!staged[dist].DecodeAndMerge(data, &consumed)) {
      return Status::Corruption("histogram partial accumulator malformed");
    }
    data.remove_prefix(consumed);
  }
  if (!data.empty()) {
    return Status::Corruption("histogram partial has trailing bytes");
  }
  for (const auto& [dist, sum] : staged) acc_[dist].Merge(sum);
  return Status::Ok();
}

std::map<double, double> DistanceHistogramCollector::Distribution() const {
  std::map<double, double> hist;
  for (const auto& [dist, sum] : acc_) {
    hist.emplace_hint(hist.end(), dist, sum.Round());
  }
  return hist;
}

std::map<double, double> DistanceHistogramCollector::NeighborhoodFunction()
    const {
  std::map<double, double> nf = Distribution();
  double running = 0.0;
  for (auto& [d, value] : nf) {
    running += value;
    value = running;
  }
  return nf;
}

double DistanceHistogramCollector::EffectiveDiameter(double quantile) const {
  std::map<double, double> nf = NeighborhoodFunction();
  if (nf.empty()) return 0.0;
  double total = nf.rbegin()->second;
  for (const auto& [d, pairs] : nf) {
    if (pairs >= quantile * total) return d;
  }
  return nf.rbegin()->first;
}

double DistanceHistogramCollector::MeanDistance() const {
  double weight = 0.0, weighted_dist = 0.0;
  for (const auto& [d, pairs] : Distribution()) {
    weight += pairs;
    weighted_dist += d * pairs;
  }
  return weight > 0.0 ? weighted_dist / weight : 0.0;
}

SweepPlan& SweepPlan::Add(SweepCollector* collector) {
  collectors_.push_back(collector);
  return *this;
}

void RunSweep(const AdsSet& set, SweepPlan& plan, uint32_t num_threads) {
  RunSweepSingleArena(set, plan, num_threads);
}

void RunSweep(const FlatAdsSet& set, SweepPlan& plan, uint32_t num_threads) {
  RunSweepSingleArena(set, plan, num_threads);
}

Status RunSweep(const AdsBackend& set, SweepPlan& plan, uint32_t num_threads,
                const std::function<Status()>& checkpoint) {
  for (SweepCollector* c : plan.collectors()) c->Begin(set.num_nodes());
  if (plan.empty()) return Status::Ok();
  ThreadPool pool(num_threads);
  SweepBuffers buffers;
  for (uint32_t r = 0; r < set.NumRanges(); ++r) {
    if (checkpoint) {
      Status abort = checkpoint();
      if (!abort.ok()) return abort;
    }
    auto range = set.Range(r);
    if (!range.ok()) return range.status();
    if (r + 1 < set.NumRanges()) set.Prefetch(r + 1);
    ArenaSet arena{range.value(), set.flavor(), set.k(), set.ranks()};
    SweepArena(arena, range.value().begin, plan, pool, buffers);
  }
  return Status::Ok();
}

}  // namespace hipads
