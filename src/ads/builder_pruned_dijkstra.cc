// Algorithm 1: ADS construction via pruned Dijkstra searches.
//
// Nodes are processed in increasing rank order; a Dijkstra on the transpose
// graph from node u reaches every node v whose ADS u belongs to. Because all
// previously inserted entries have smaller rank, u belongs to ADS(v) iff
// fewer than k current entries of ADS(v) are closer under the tie-broken
// (distance, node id) order, and the search can be pruned at v otherwise
// (anything beyond v is farther still). Every inserted entry is final:
// later-processed nodes have larger ranks and cannot displace it.

#include <cassert>
#include <queue>

#include "ads/builders.h"

namespace hipads {

namespace {

struct HeapItem {
  double dist;
  NodeId node;
  bool operator>(const HeapItem& o) const {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;
  }
};

// Shared scratch buffers so the n Dijkstra runs avoid O(n) re-initialization
// each (epoch-stamped tentative distances).
struct Scratch {
  explicit Scratch(NodeId n) : dist(n, 0.0), epoch_of(n, 0) {}
  std::vector<double> dist;
  std::vector<uint32_t> epoch_of;
  uint32_t epoch = 0;

  void NewEpoch() { ++epoch; }
  bool Seen(NodeId v) const { return epoch_of[v] == epoch; }
  void Set(NodeId v, double d) {
    dist[v] = d;
    epoch_of[v] = epoch;
  }
};

// One bottom-k construction pass over rank assignment index `perm`, with
// entries labeled `part`. Sources must be sorted by increasing rank. Appends
// final entries into `out`; `keys[v]` accumulates the sorted (distance,
// node id) keys of current entries of ADS(v) for the pruning test.
using LexKey = std::pair<double, NodeId>;

void RunPass(const Graph& gt, uint32_t k, uint32_t part, uint32_t perm,
             const RankAssignment& ranks,
             const std::vector<NodeId>& sources_by_rank,
             std::vector<std::vector<AdsEntry>>& out,
             std::vector<std::vector<LexKey>>& keys, Scratch& scratch,
             AdsBuildStats* stats) {
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (NodeId u : sources_by_rank) {
    double ru = ranks.rank(u, perm);
    scratch.NewEpoch();
    heap.push({0.0, u});
    scratch.Set(u, 0.0);
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      if (scratch.dist[v] < d) continue;  // stale
      // Membership test: all existing entries have smaller rank, so u joins
      // ADS(v) iff fewer than k of them are closer under the tie-broken
      // (distance, node id) order. Otherwise prune the search below v
      // (every node beyond v is farther, so the same >= k entries apply).
      std::vector<LexKey>& kl = keys[v];
      LexKey key{d, u};
      auto it = std::lower_bound(kl.begin(), kl.end(), key);
      size_t closer = static_cast<size_t>(it - kl.begin());
      if (closer >= k) continue;  // prune: v settled but not expanded
      kl.insert(it, key);
      out[v].push_back(AdsEntry{u, part, ru, d});
      if (stats != nullptr) ++stats->insertions;
      if (stats != nullptr) stats->relaxations += gt.OutDegree(v);
      for (const Arc& a : gt.OutArcs(v)) {
        double nd = d + a.weight;
        if (!scratch.Seen(a.head) || nd < scratch.dist[a.head]) {
          scratch.Set(a.head, nd);
          heap.push({nd, a.head});
        }
      }
    }
  }
}

std::vector<NodeId> SortedByRank(const Graph& g, const RankAssignment& ranks,
                                 uint32_t perm,
                                 const std::vector<NodeId>* subset) {
  std::vector<NodeId> order;
  if (subset != nullptr) {
    order = *subset;
  } else {
    order.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return ranks.rank(a, perm) < ranks.rank(b, perm);
  });
  return order;
}

}  // namespace

AdsSet BuildAdsPrunedDijkstra(const Graph& g, uint32_t k, SketchFlavor flavor,
                              const RankAssignment& ranks,
                              AdsBuildStats* stats) {
  assert(k >= 1);
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  Scratch scratch(n);

  switch (flavor) {
    case SketchFlavor::kBottomK: {
      std::vector<std::vector<LexKey>> dist_lists(n);
      std::vector<NodeId> order = SortedByRank(g, ranks, 0, nullptr);
      RunPass(gt, k, /*part=*/0, /*perm=*/0, ranks, order, out, dist_lists,
              scratch, stats);
      break;
    }
    case SketchFlavor::kKMins: {
      // k independent bottom-1 ADSs over k rank assignments.
      for (uint32_t p = 0; p < k; ++p) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, p, nullptr);
        RunPass(gt, 1, /*part=*/p, /*perm=*/p, ranks, order, out, dist_lists,
                scratch, stats);
      }
      break;
    }
    case SketchFlavor::kKPartition: {
      // One bottom-1 pass per bucket; only bucket members are sources.
      std::vector<std::vector<NodeId>> buckets(k);
      for (NodeId v = 0; v < n; ++v) {
        buckets[BucketHash(ranks.seed(), v, k)].push_back(v);
      }
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, 0, &buckets[h]);
        RunPass(gt, 1, /*part=*/h, /*perm=*/0, ranks, order, out, dist_lists,
                scratch, stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

}  // namespace hipads
