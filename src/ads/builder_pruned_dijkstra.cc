// Algorithm 1: ADS construction via pruned Dijkstra searches.
//
// Nodes are processed in increasing rank order; a Dijkstra on the transpose
// graph from node u reaches every node v whose ADS u belongs to. Because all
// previously inserted entries have smaller rank, u belongs to ADS(v) iff
// fewer than k current entries of ADS(v) are closer under the tie-broken
// (distance, node id) order, and the search can be pruned at v otherwise
// (anything beyond v is farther still). Every inserted entry is final:
// later-processed nodes have larger ranks and cannot displace it.
//
// The parallel variant batches sources into windows of increasing rank
// (window sizes grow geometrically, so the pruning state is at most "one
// doubling" stale). Within a window every source runs its pruned Dijkstra
// against the frozen state of all previous windows — a weaker pruning test,
// so the search emits a superset of the true entries as candidates — and a
// deterministic per-target merge then replays the sequential inclusion rule
// over the candidates in rank order. Since the replay applies exactly the
// test the sequential builder would have applied with exactly the same key
// state, the accepted entries (and even their insertion order) match the
// sequential builder entry for entry; see the window-stability argument in
// README.md's threading-model section.

#include <algorithm>
#include <cassert>
#include <queue>

#include "ads/builders.h"
#include "util/parallel.h"

namespace hipads {

namespace {

struct HeapItem {
  double dist;
  NodeId node;
  bool operator>(const HeapItem& o) const {
    if (dist != o.dist) return dist > o.dist;
    return node > o.node;
  }
};

// Shared scratch buffers so the n Dijkstra runs avoid O(n) re-initialization
// each (epoch-stamped tentative distances).
struct Scratch {
  explicit Scratch(NodeId n) : dist(n, 0.0), epoch_of(n, 0) {}
  std::vector<double> dist;
  std::vector<uint32_t> epoch_of;
  uint32_t epoch = 0;

  void NewEpoch() { ++epoch; }
  bool Seen(NodeId v) const { return epoch_of[v] == epoch; }
  void Set(NodeId v, double d) {
    dist[v] = d;
    epoch_of[v] = epoch;
  }
};

// One bottom-k construction pass over rank assignment index `perm`, with
// entries labeled `part`. Sources must be sorted by increasing rank. Appends
// final entries into `out`; `keys[v]` accumulates the sorted (distance,
// node id) keys of current entries of ADS(v) for the pruning test.
using LexKey = std::pair<double, NodeId>;

void RunPass(const Graph& gt, uint32_t k, uint32_t part, uint32_t perm,
             const RankAssignment& ranks,
             const std::vector<NodeId>& sources_by_rank,
             std::vector<std::vector<AdsEntry>>& out,
             std::vector<std::vector<LexKey>>& keys, Scratch& scratch,
             AdsBuildStats* stats) {
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (NodeId u : sources_by_rank) {
    double ru = ranks.rank(u, perm);
    scratch.NewEpoch();
    heap.push({0.0, u});
    scratch.Set(u, 0.0);
    while (!heap.empty()) {
      auto [d, v] = heap.top();
      heap.pop();
      if (scratch.dist[v] < d) continue;  // stale
      // Membership test: all existing entries have smaller rank, so u joins
      // ADS(v) iff fewer than k of them are closer under the tie-broken
      // (distance, node id) order. Otherwise prune the search below v
      // (every node beyond v is farther, so the same >= k entries apply).
      std::vector<LexKey>& kl = keys[v];
      LexKey key{d, u};
      auto it = std::lower_bound(kl.begin(), kl.end(), key);
      size_t closer = static_cast<size_t>(it - kl.begin());
      if (closer >= k) continue;  // prune: v settled but not expanded
      kl.insert(it, key);
      out[v].push_back(AdsEntry{u, part, ru, d});
      if (stats != nullptr) ++stats->insertions;
      if (stats != nullptr) stats->relaxations += gt.OutDegree(v);
      for (const Arc& a : gt.OutArcs(v)) {
        double nd = d + a.weight;
        if (!scratch.Seen(a.head) || nd < scratch.dist[a.head]) {
          scratch.Set(a.head, nd);
          heap.push({nd, a.head});
        }
      }
    }
  }
}

// A candidate entry emitted by a frozen-state window Dijkstra: source
// `widx` (index into the window, i.e. rank order) reached `target` at
// distance `dist`. (target, widx) pairs are unique within a window.
struct WindowCandidate {
  NodeId target;
  uint32_t widx;
  double dist;
};

// Parallel counterpart of RunPass (rank-window batching). Window w of
// geometrically growing size is processed in two barrier-separated phases:
//   A. every window source runs a pruned Dijkstra against the *frozen*
//      keys[] of previous windows (read-only, so threads share it safely),
//      emitting WindowCandidates; sources are dealt to threads round-robin
//      (source w -> thread w % T) because earlier (smaller-rank) sources
//      explore more.
//   B. candidates are sorted by (target, widx) and split into
//      target-aligned shards; each shard replays the sequential inclusion
//      test per candidate in rank order, mutating only its own targets'
//      keys[v] / out[v].
// Both phases decompose by index, never by thread identity, so the result
// is independent of scheduling; the replay makes it equal to RunPass.
void RunPassParallel(const Graph& gt, uint32_t k, uint32_t part,
                     uint32_t perm, const RankAssignment& ranks,
                     const std::vector<NodeId>& sources_by_rank,
                     std::vector<std::vector<AdsEntry>>& out,
                     std::vector<std::vector<LexKey>>& keys,
                     std::vector<Scratch>& scratch, ThreadPool& pool,
                     AdsBuildStats* stats) {
  const uint32_t num_threads = pool.num_threads();
  const size_t num_sources = sources_by_rank.size();
  // First window = max(T, k) sources: the k cheapest unpruned searches cost
  // about what the sequential builder pays for them anyway, and windows
  // then double, bounding total extra exploration by a constant factor.
  const size_t first_window =
      std::max<size_t>(num_threads, std::max<uint32_t>(k, 1));

  std::vector<std::vector<WindowCandidate>> thread_cands(num_threads);
  std::vector<uint64_t> thread_relax(num_threads);
  std::vector<WindowCandidate> candidates;
  std::vector<double> window_ranks;

  size_t pos = 0;
  while (pos < num_sources) {
    const size_t window =
        std::min(num_sources - pos, std::max(first_window, pos));
    const NodeId* window_sources = sources_by_rank.data() + pos;
    window_ranks.resize(window);
    for (size_t w = 0; w < window; ++w) {
      window_ranks[w] = ranks.rank(window_sources[w], perm);
    }

    // Phase A: frozen-state pruned Dijkstras, candidates per thread.
    pool.RunTasks(num_threads, [&](size_t t) {
      std::vector<WindowCandidate>& cands = thread_cands[t];
      cands.clear();
      Scratch& sc = scratch[t];
      uint64_t relax = 0;
      std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>>
          heap;
      for (size_t w = t; w < window; w += num_threads) {
        NodeId u = window_sources[w];
        sc.NewEpoch();
        heap.push({0.0, u});
        sc.Set(u, 0.0);
        while (!heap.empty()) {
          auto [d, v] = heap.top();
          heap.pop();
          if (sc.dist[v] < d) continue;  // stale
          const std::vector<LexKey>& kl = keys[v];
          LexKey key{d, u};
          auto it = std::lower_bound(kl.begin(), kl.end(), key);
          if (static_cast<size_t>(it - kl.begin()) >= k) continue;  // prune
          cands.push_back(
              WindowCandidate{v, static_cast<uint32_t>(w), d});
          relax += gt.OutDegree(v);
          for (const Arc& a : gt.OutArcs(v)) {
            double nd = d + a.weight;
            if (!sc.Seen(a.head) || nd < sc.dist[a.head]) {
              sc.Set(a.head, nd);
              heap.push({nd, a.head});
            }
          }
        }
      }
      thread_relax[t] = relax;
    });

    candidates.clear();
    for (uint32_t t = 0; t < num_threads; ++t) {
      if (stats != nullptr) stats->relaxations += thread_relax[t];
      candidates.insert(candidates.end(), thread_cands[t].begin(),
                        thread_cands[t].end());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const WindowCandidate& a, const WindowCandidate& b) {
                if (a.target != b.target) return a.target < b.target;
                return a.widx < b.widx;
              });

    // Phase B: replay the sequential inclusion rule per target, sharded
    // over target-aligned candidate ranges.
    std::vector<size_t> bounds = {0};
    size_t chunk = (candidates.size() + num_threads - 1) / num_threads;
    for (uint32_t t = 1; t < num_threads; ++t) {
      size_t b = std::min(candidates.size(), t * chunk);
      while (b < candidates.size() && b > 0 &&
             candidates[b].target == candidates[b - 1].target) {
        ++b;
      }
      bounds.push_back(std::max(b, bounds.back()));
    }
    bounds.push_back(candidates.size());
    std::vector<uint64_t> inserted(num_threads + 1, 0);
    pool.ParallelRanges(bounds, [&](size_t begin, size_t end, uint32_t t) {
      uint64_t ins = 0;
      for (size_t i = begin; i < end; ++i) {
        const WindowCandidate& c = candidates[i];
        NodeId u = window_sources[c.widx];
        std::vector<LexKey>& kl = keys[c.target];
        LexKey key{c.dist, u};
        auto it = std::lower_bound(kl.begin(), kl.end(), key);
        if (static_cast<size_t>(it - kl.begin()) >= k) continue;
        kl.insert(it, key);
        out[c.target].push_back(
            AdsEntry{u, part, window_ranks[c.widx], c.dist});
        ++ins;
      }
      inserted[t] = ins;
    });
    if (stats != nullptr) {
      for (uint32_t t = 0; t <= num_threads; ++t) {
        stats->insertions += inserted[t];
      }
      ++stats->rounds;
    }
    pos += window;
  }
}

std::vector<NodeId> SortedByRank(const Graph& g, const RankAssignment& ranks,
                                 uint32_t perm,
                                 const std::vector<NodeId>* subset) {
  std::vector<NodeId> order;
  if (subset != nullptr) {
    order = *subset;
  } else {
    order.resize(g.num_nodes());
    for (NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  }
  std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    return ranks.rank(a, perm) < ranks.rank(b, perm);
  });
  return order;
}

}  // namespace

AdsSet BuildAdsPrunedDijkstra(const Graph& g, uint32_t k, SketchFlavor flavor,
                              const RankAssignment& ranks,
                              AdsBuildStats* stats) {
  assert(k >= 1);
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);
  Scratch scratch(n);

  switch (flavor) {
    case SketchFlavor::kBottomK: {
      std::vector<std::vector<LexKey>> dist_lists(n);
      std::vector<NodeId> order = SortedByRank(g, ranks, 0, nullptr);
      RunPass(gt, k, /*part=*/0, /*perm=*/0, ranks, order, out, dist_lists,
              scratch, stats);
      break;
    }
    case SketchFlavor::kKMins: {
      // k independent bottom-1 ADSs over k rank assignments.
      for (uint32_t p = 0; p < k; ++p) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, p, nullptr);
        RunPass(gt, 1, /*part=*/p, /*perm=*/p, ranks, order, out, dist_lists,
                scratch, stats);
      }
      break;
    }
    case SketchFlavor::kKPartition: {
      // One bottom-1 pass per bucket; only bucket members are sources.
      std::vector<std::vector<NodeId>> buckets(k);
      for (NodeId v = 0; v < n; ++v) {
        buckets[BucketHash(ranks.seed(), v, k)].push_back(v);
      }
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, 0, &buckets[h]);
        RunPass(gt, 1, /*part=*/h, /*perm=*/0, ranks, order, out, dist_lists,
                scratch, stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

AdsSet BuildAdsPrunedDijkstraParallel(const Graph& g, uint32_t k,
                                      SketchFlavor flavor,
                                      const RankAssignment& ranks,
                                      uint32_t num_threads,
                                      AdsBuildStats* stats) {
  assert(k >= 1);
  if (num_threads == 0) num_threads = HardwareThreads();
  if (num_threads == 1) {
    // One thread gains nothing from window batching but would pay its
    // weaker pruning; the sequential builder is the 1-thread fast path.
    return BuildAdsPrunedDijkstra(g, k, flavor, ranks, stats);
  }
  Graph gt = g.Transpose();
  NodeId n = g.num_nodes();
  std::vector<std::vector<AdsEntry>> out(n);
  ReserveExpectedAdsSize(out, k, flavor);
  ThreadPool pool(num_threads);
  std::vector<Scratch> scratch(pool.num_threads(), Scratch(n));

  switch (flavor) {
    case SketchFlavor::kBottomK: {
      std::vector<std::vector<LexKey>> dist_lists(n);
      std::vector<NodeId> order = SortedByRank(g, ranks, 0, nullptr);
      RunPassParallel(gt, k, /*part=*/0, /*perm=*/0, ranks, order, out,
                      dist_lists, scratch, pool, stats);
      break;
    }
    case SketchFlavor::kKMins: {
      for (uint32_t p = 0; p < k; ++p) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, p, nullptr);
        RunPassParallel(gt, 1, /*part=*/p, /*perm=*/p, ranks, order, out,
                        dist_lists, scratch, pool, stats);
      }
      break;
    }
    case SketchFlavor::kKPartition: {
      std::vector<std::vector<NodeId>> buckets(k);
      for (NodeId v = 0; v < n; ++v) {
        buckets[BucketHash(ranks.seed(), v, k)].push_back(v);
      }
      for (uint32_t h = 0; h < k; ++h) {
        std::vector<std::vector<LexKey>> dist_lists(n);
        std::vector<NodeId> order = SortedByRank(g, ranks, 0, &buckets[h]);
        RunPassParallel(gt, 1, /*part=*/h, /*perm=*/0, ranks, order, out,
                        dist_lists, scratch, pool, stats);
      }
      break;
    }
  }

  AdsSet set;
  set.flavor = flavor;
  set.k = k;
  set.ranks = ranks;
  set.ads.reserve(n);
  for (NodeId v = 0; v < n; ++v) set.ads.emplace_back(std::move(out[v]));
  return set;
}

}  // namespace hipads
