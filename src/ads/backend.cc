#include "ads/backend.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "ads/serialize.h"
#include "ads/shard.h"

#if defined(__unix__) || defined(__APPLE__)
#define HIPADS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define HIPADS_HAS_MMAP 0
#endif

namespace hipads {

AdsBackend::~AdsBackend() = default;

void AdsBackend::Prefetch(uint32_t /*r*/) const {}

// ---------------------------------------------------------------------------
// FlatAdsBackend
// ---------------------------------------------------------------------------

StatusOr<AdsArenaView> FlatAdsBackend::Range(uint32_t r) const {
  if (r != 0) {
    return Status::InvalidArgument("range " + std::to_string(r) +
                                   " out of bounds (1 range)");
  }
  const FlatAdsSet& s = set();
  AdsArenaView view;
  view.begin = 0;
  view.end = static_cast<NodeId>(s.num_nodes());
  view.offsets = s.offsets.data();
  view.entries = s.entries.data();
  if (s.has_hip()) {
    view.hip_tau = s.hip_tau.data();
    view.hip_weight = s.hip_weight.data();
  }
  return view;
}

StatusOr<AdsView> FlatAdsBackend::ViewOf(NodeId v) const {
  const FlatAdsSet& s = set();
  if (v >= s.num_nodes()) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  return s.of(v);
}

StatusOr<HipView> FlatAdsBackend::HipOf(NodeId v) const {
  const FlatAdsSet& s = set();
  if (v >= s.num_nodes()) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  if (!s.has_hip()) return HipView{};
  return HipView{s.hip_tau.data() + s.offsets[v],
                 s.hip_weight.data() + s.offsets[v]};
}

// ---------------------------------------------------------------------------
// MmapAdsSet
// ---------------------------------------------------------------------------

MmapAdsSet::MmapAdsSet() { AdoptFallback(); }

MmapAdsSet::MmapAdsSet(MmapAdsSet&& other) noexcept {
  *this = std::move(other);
}

MmapAdsSet& MmapAdsSet::operator=(MmapAdsSet&& other) noexcept {
  if (this == &other) return *this;
  Unmap();
  map_ = other.map_;
  map_len_ = other.map_len_;
  flavor_ = other.flavor_;
  k_ = other.k_;
  ranks_ = std::move(other.ranks_);
  num_nodes_ = other.num_nodes_;
  num_entries_ = other.num_entries_;
  // Vector moves keep their heap buffers, so fallback-aliasing pointers
  // survive the move unchanged; mapping pointers are position-independent.
  fallback_ = std::move(other.fallback_);
  offsets_ = other.offsets_;
  entries_ = other.entries_;
  hip_tau_ = other.hip_tau_;
  hip_weight_ = other.hip_weight_;
  other.map_ = nullptr;
  other.map_len_ = 0;
  other.AdoptFallback();  // leaves `other` as a valid empty set
  return *this;
}

MmapAdsSet::~MmapAdsSet() { Unmap(); }

void MmapAdsSet::Unmap() {
#if HIPADS_HAS_MMAP
  if (map_ != nullptr) ::munmap(map_, map_len_);
#endif
  map_ = nullptr;
  map_len_ = 0;
}

void MmapAdsSet::AdoptFallback() {
  flavor_ = fallback_.flavor;
  k_ = fallback_.k;
  ranks_ = fallback_.ranks;
  num_nodes_ = fallback_.num_nodes();
  num_entries_ = fallback_.entries.size();
  offsets_ = fallback_.offsets.data();
  entries_ = fallback_.entries.data();
  hip_tau_ = fallback_.has_hip() ? fallback_.hip_tau.data() : nullptr;
  hip_weight_ = fallback_.has_hip() ? fallback_.hip_weight.data() : nullptr;
}

StatusOr<MmapAdsSet> MmapAdsSet::OpenFallback(
    const std::string& path, std::function<double(uint64_t)> beta) {
  auto loaded = ReadFlatAdsSetFile(path, std::move(beta));
  if (!loaded.ok()) return loaded.status();
  MmapAdsSet set;
  set.fallback_ = std::move(loaded).value();
  set.AdoptFallback();
  return set;
}

StatusOr<MmapAdsSet> MmapAdsSet::Open(const std::string& path,
                                      std::function<double(uint64_t)> beta) {
#if HIPADS_HAS_MMAP
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::IOError("cannot stat " + path);
  }
  size_t len = static_cast<size_t>(st.st_size);
  if (len == 0) {
    ::close(fd);
    return Status::Corruption("empty ADS file " + path);
  }
  void* map = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    // mmap itself unavailable for this file (e.g. special filesystem):
    // degrade to the copying loader rather than failing the open.
    return OpenFallback(path, std::move(beta));
  }
#if defined(POSIX_MADV_WILLNEED)
  // Open validates the whole file immediately (checksum scan) and the
  // estimator sweeps then read the arena front to back, so ask the kernel
  // to read the mapping ahead instead of faulting page by page — this is
  // what makes a prefetch-thread mmap "load" actually pull the bytes in,
  // not just reserve address space. Advisory only: failure is harmless.
  (void)::posix_madvise(map, len, POSIX_MADV_WILLNEED);
#endif
  const char* data = static_cast<const char*>(map);
  std::string magic_probe(data, std::min<size_t>(len, 8));
  if (!IsBinaryAdsData(magic_probe)) {
    // v1 text (or not an ADS file at all): only the copying loader can
    // parse it; it also produces the proper error for garbage input.
    ::munmap(map, len);
    return OpenFallback(path, std::move(beta));
  }
  auto validated = ValidateAdsSetBinary(data, len);
  if (!validated.ok()) {
    // Corrupt v2 must fail loudly — re-parsing cannot fix a bad checksum.
    ::munmap(map, len);
    return validated.status();
  }
  const AdsBinaryView& v = validated.value();
  if (!v.canonical_order) {
    // Valid file, but a zero-copy consumer cannot re-sort node blocks into
    // canonical order; the copying loader can.
    ::munmap(map, len);
    return OpenFallback(path, std::move(beta));
  }
  MmapAdsSet set;
  Status ranks_status = RanksFromStoredParams(v.rank_kind, v.seed, v.base,
                                              std::move(beta), &set.ranks_);
  if (!ranks_status.ok()) {
    ::munmap(map, len);
    return ranks_status;
  }
  set.map_ = map;
  set.map_len_ = len;
  set.flavor_ = v.flavor;
  set.k_ = v.k;
  set.num_nodes_ = v.num_nodes;
  set.num_entries_ = v.num_entries;
  set.offsets_ = v.offsets;
  set.entries_ = v.entries;
  set.hip_tau_ = v.hip_tau;        // null when the file has no HIP section
  set.hip_weight_ = v.hip_weight;
  return set;
#else
  return OpenFallback(path, std::move(beta));
#endif
}

StatusOr<AdsArenaView> MmapAdsSet::Range(uint32_t r) const {
  if (r != 0) {
    return Status::InvalidArgument("range " + std::to_string(r) +
                                   " out of bounds (1 range)");
  }
  AdsArenaView view;
  view.begin = 0;
  view.end = static_cast<NodeId>(num_nodes_);
  view.offsets = offsets_;
  view.entries = entries_;
  view.hip_tau = hip_tau_;
  view.hip_weight = hip_weight_;
  return view;
}

StatusOr<AdsView> MmapAdsSet::ViewOf(NodeId v) const {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  return AdsView({entries_ + offsets_[v], entries_ + offsets_[v + 1]});
}

StatusOr<HipView> MmapAdsSet::HipOf(NodeId v) const {
  if (v >= num_nodes_) {
    return Status::InvalidArgument("node " + std::to_string(v) +
                                   " out of range");
  }
  if (hip_tau_ == nullptr) return HipView{};
  return HipView{hip_tau_ + offsets_[v], hip_weight_ + offsets_[v]};
}

// ---------------------------------------------------------------------------
// OpenAdsBackend
// ---------------------------------------------------------------------------

StatusOr<std::unique_ptr<AdsBackend>> OpenAdsBackend(
    const std::string& path, const AdsBackendOptions& options) {
  if (IsShardedAdsPath(path)) {
    ShardedOptions sharded;
    sharded.beta = options.beta;
    sharded.max_resident = options.max_resident;
    sharded.prefetch = options.prefetch;
    sharded.prefetch_depth = options.prefetch_depth;
    sharded.use_mmap = options.mode == BackendMode::kMmap;
    auto opened = ShardedAdsSet::Open(path, sharded);
    if (!opened.ok()) return opened.status();
    auto set = std::make_unique<ShardedAdsSet>(std::move(opened).value());
    if (options.validate_files) {
      Status valid = set->ValidateFiles();
      if (!valid.ok()) return valid;
    }
    return std::unique_ptr<AdsBackend>(std::move(set));
  }
  if (options.mode == BackendMode::kMmap) {
    auto opened = MmapAdsSet::Open(path, options.beta);
    if (!opened.ok()) return opened.status();
    return std::unique_ptr<AdsBackend>(
        std::make_unique<MmapAdsSet>(std::move(opened).value()));
  }
  auto loaded = ReadFlatAdsSetFile(path, options.beta);
  if (!loaded.ok()) return loaded.status();
  return std::unique_ptr<AdsBackend>(
      std::make_unique<FlatAdsBackend>(std::move(loaded).value()));
}

}  // namespace hipads
