// Graph-level queries over a full ADS set: the ANF-style distance
// distribution / neighbourhood function, all-nodes centrality sweeps, and
// top-k centrality selection. These are the workloads that motivated ADSs
// (paper Section 1) packaged over the HIP estimators.
//
// Every function here is a thin single-collector plan over the fused
// sweep-execution engine (ads/sweep.h), which owns the one sweep
// implementation in the codebase. Each query accepts any storage layout —
// the per-node-vector AdsSet, the flat CSR arena FlatAdsSet, or any
// AdsBackend (in-memory arena, zero-copy mmap, sharded with prefetch).
// `num_threads` = 0 uses the hardware count, 1 runs inline; results are
// bit-identical for every storage engine and every thread count (the
// executor's determinism contract, documented in ads/sweep.h).
//
// Calling K of these functions costs K full backend sweeps. A caller that
// wants several statistics from the same sketches should build one
// SweepPlan with K collectors and RunSweep it instead: same results,
// bitwise, for one shard sweep and one HIP scan per node.
//
// The AdsBackend overloads return StatusOr because a lazy range load can
// fail (missing, truncated or corrupt shard file).

#ifndef HIPADS_ADS_QUERIES_H_
#define HIPADS_ADS_QUERIES_H_

#include <functional>
#include <map>
#include <vector>

#include "ads/ads.h"
#include "ads/backend.h"
#include "ads/flat_ads.h"
#include "ads/sweep.h"  // the executor underneath; also TopKNodes
#include "util/status.h"

namespace hipads {

/// Estimated neighbourhood function: for each distance d that appears in
/// some sketch, N(d) = estimated number of ordered pairs (u,v) with
/// d(u,v) <= d, v != u. This is what ANF/hyperANF compute; with HIP weights
/// the estimate is unbiased and strictly more accurate (Appendix B.1).
std::map<double, double> EstimateNeighborhoodFunction(
    const AdsSet& set, uint32_t num_threads = 0);
std::map<double, double> EstimateNeighborhoodFunction(
    const FlatAdsSet& set, uint32_t num_threads = 0);
StatusOr<std::map<double, double>> EstimateNeighborhoodFunction(
    const AdsBackend& set, uint32_t num_threads = 0);

/// Estimated distance distribution: number of ordered pairs at each exact
/// distance (the increments of the neighbourhood function).
std::map<double, double> EstimateDistanceDistribution(
    const AdsSet& set, uint32_t num_threads = 0);
std::map<double, double> EstimateDistanceDistribution(
    const FlatAdsSet& set, uint32_t num_threads = 0);
StatusOr<std::map<double, double>> EstimateDistanceDistribution(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of C_{alpha,beta} for every node (Eq. 3).
std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);
std::vector<double> EstimateClosenessAll(
    const FlatAdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateClosenessAll(
    const AdsBackend& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);

/// HIP estimates of the sum of distances (inverse classic closeness
/// centrality) for every node.
std::vector<double> EstimateDistanceSumAll(const AdsSet& set,
                                           uint32_t num_threads = 0);
std::vector<double> EstimateDistanceSumAll(const FlatAdsSet& set,
                                           uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateDistanceSumAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of harmonic centrality for every node.
std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set,
                                                  uint32_t num_threads = 0);
std::vector<double> EstimateHarmonicCentralityAll(const FlatAdsSet& set,
                                                  uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateHarmonicCentralityAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of the d-neighborhood cardinality for every node.
std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d,
                                                uint32_t num_threads = 0);
std::vector<double> EstimateNeighborhoodSizeAll(const FlatAdsSet& set,
                                                double d,
                                                uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateNeighborhoodSizeAll(
    const AdsBackend& set, double d, uint32_t num_threads = 0);

/// HIP estimates of the reachable-set size for every node.
std::vector<double> EstimateReachableCountAll(const AdsSet& set,
                                              uint32_t num_threads = 0);
std::vector<double> EstimateReachableCountAll(const FlatAdsSet& set,
                                              uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateReachableCountAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// Effective diameter estimate: the smallest distance d at which the
/// estimated neighbourhood function reaches `quantile` (0.9 is the
/// conventional choice; the "four degrees of separation" style statistic
/// computed by HyperBall/hyperANF). Returns 0 for an empty set.
double EstimateEffectiveDiameter(const AdsSet& set, double quantile = 0.9);
double EstimateEffectiveDiameter(const FlatAdsSet& set,
                                 double quantile = 0.9);
StatusOr<double> EstimateEffectiveDiameter(const AdsBackend& set,
                                           double quantile = 0.9);

/// Estimated mean distance between reachable ordered pairs.
double EstimateMeanDistance(const AdsSet& set);
double EstimateMeanDistance(const FlatAdsSet& set);
StatusOr<double> EstimateMeanDistance(const AdsBackend& set);

}  // namespace hipads

#endif  // HIPADS_ADS_QUERIES_H_
