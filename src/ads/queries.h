// Graph-level queries over a full ADS set: the ANF-style distance
// distribution / neighbourhood function, all-nodes centrality sweeps, and
// top-k centrality selection. These are the workloads that motivated ADSs
// (paper Section 1) packaged over the HIP estimators.
//
// Every query accepts either storage layout — the per-node-vector AdsSet or
// the flat CSR arena FlatAdsSet; the flat arena is the fast path (one
// linear sweep over contiguous memory). The per-node estimator loops are
// embarrassingly parallel and run on the shared ThreadPool: `num_threads`
// = 0 uses the hardware count, 1 runs inline. Results are bit-identical for
// every thread count — per-node outputs are independent, and the
// distribution accumulators always reduce per-node results in node order.
//
// The whole-graph sweeps additionally accept any AdsBackend
// (ads/backend.h) — the in-memory arena behind FlatAdsBackend, a
// zero-copy MmapAdsSet, or a ShardedAdsSet with bounded resident memory.
// Backends are swept one contiguous node range at a time in node order;
// because ranges tile the node space contiguously, the per-node visit
// order — and therefore every result, bitwise — matches the single-arena
// sweep, whatever engine holds the sketches. Between ranges the sweep
// emits Prefetch residency hints, so a prefetching sharded backend
// overlaps the next shard's load with the current shard's compute. These
// overloads return StatusOr because a lazy range load can fail (missing,
// truncated or corrupt shard file).

#ifndef HIPADS_ADS_QUERIES_H_
#define HIPADS_ADS_QUERIES_H_

#include <functional>
#include <map>
#include <vector>

#include "ads/ads.h"
#include "ads/backend.h"
#include "ads/flat_ads.h"
#include "util/status.h"

namespace hipads {

/// Estimated neighbourhood function: for each distance d that appears in
/// some sketch, N(d) = estimated number of ordered pairs (u,v) with
/// d(u,v) <= d, v != u. This is what ANF/hyperANF compute; with HIP weights
/// the estimate is unbiased and strictly more accurate (Appendix B.1).
std::map<double, double> EstimateNeighborhoodFunction(
    const AdsSet& set, uint32_t num_threads = 0);
std::map<double, double> EstimateNeighborhoodFunction(
    const FlatAdsSet& set, uint32_t num_threads = 0);
StatusOr<std::map<double, double>> EstimateNeighborhoodFunction(
    const AdsBackend& set, uint32_t num_threads = 0);

/// Estimated distance distribution: number of ordered pairs at each exact
/// distance (the increments of the neighbourhood function).
std::map<double, double> EstimateDistanceDistribution(
    const AdsSet& set, uint32_t num_threads = 0);
std::map<double, double> EstimateDistanceDistribution(
    const FlatAdsSet& set, uint32_t num_threads = 0);
StatusOr<std::map<double, double>> EstimateDistanceDistribution(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of C_{alpha,beta} for every node (Eq. 3).
std::vector<double> EstimateClosenessAll(
    const AdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);
std::vector<double> EstimateClosenessAll(
    const FlatAdsSet& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateClosenessAll(
    const AdsBackend& set, const std::function<double(double)>& alpha,
    const std::function<double(NodeId)>& beta, uint32_t num_threads = 0);

/// HIP estimates of the sum of distances (inverse classic closeness
/// centrality) for every node.
std::vector<double> EstimateDistanceSumAll(const AdsSet& set,
                                           uint32_t num_threads = 0);
std::vector<double> EstimateDistanceSumAll(const FlatAdsSet& set,
                                           uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateDistanceSumAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of harmonic centrality for every node.
std::vector<double> EstimateHarmonicCentralityAll(const AdsSet& set,
                                                  uint32_t num_threads = 0);
std::vector<double> EstimateHarmonicCentralityAll(const FlatAdsSet& set,
                                                  uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateHarmonicCentralityAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// HIP estimates of the d-neighborhood cardinality for every node.
std::vector<double> EstimateNeighborhoodSizeAll(const AdsSet& set, double d,
                                                uint32_t num_threads = 0);
std::vector<double> EstimateNeighborhoodSizeAll(const FlatAdsSet& set,
                                                double d,
                                                uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateNeighborhoodSizeAll(
    const AdsBackend& set, double d, uint32_t num_threads = 0);

/// HIP estimates of the reachable-set size for every node.
std::vector<double> EstimateReachableCountAll(const AdsSet& set,
                                              uint32_t num_threads = 0);
std::vector<double> EstimateReachableCountAll(const FlatAdsSet& set,
                                              uint32_t num_threads = 0);
StatusOr<std::vector<double>> EstimateReachableCountAll(
    const AdsBackend& set, uint32_t num_threads = 0);

/// Node ids of the `count` largest values in `scores`, descending.
std::vector<NodeId> TopKNodes(const std::vector<double>& scores,
                              uint32_t count);

/// Effective diameter estimate: the smallest distance d at which the
/// estimated neighbourhood function reaches `quantile` (0.9 is the
/// conventional choice; the "four degrees of separation" style statistic
/// computed by HyperBall/hyperANF). Returns 0 for an empty set.
double EstimateEffectiveDiameter(const AdsSet& set, double quantile = 0.9);
double EstimateEffectiveDiameter(const FlatAdsSet& set,
                                 double quantile = 0.9);
StatusOr<double> EstimateEffectiveDiameter(const AdsBackend& set,
                                           double quantile = 0.9);

/// Estimated mean distance between reachable ordered pairs.
double EstimateMeanDistance(const AdsSet& set);
double EstimateMeanDistance(const FlatAdsSet& set);
StatusOr<double> EstimateMeanDistance(const AdsBackend& set);

}  // namespace hipads

#endif  // HIPADS_ADS_QUERIES_H_
