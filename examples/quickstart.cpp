// Quickstart: the 60-second tour of hipads.
//
//   1. build (or load) a graph
//   2. compute All-Distances Sketches for every node (one pass, ~k ln n
//      entries per node)
//   3. ask HIP estimators for distance-based statistics of any node —
//      neighborhood sizes, closeness centralities, reachable-set sizes —
//      each query touching only the sketch, never the graph.
//
// Run:  ./quickstart

#include <cstdio>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "graph/exact.h"
#include "graph/generators.h"

using namespace hipads;

int main() {
  // A small social-like graph: preferential attachment, 5000 nodes.
  Graph g = BarabasiAlbert(/*n=*/5000, /*attach=*/3, /*seed=*/7);
  std::printf("graph: %u nodes, %llu arcs\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs()));

  // Sketch every node. k controls the accuracy/size trade-off:
  // CV <= 1/sqrt(2(k-1)) for HIP estimates (Theorem 5.1).
  const uint32_t k = 16;
  auto ranks = RankAssignment::Uniform(/*seed=*/42);
  AdsSet sketches = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
  std::printf("sketched: %.1f entries/node (expected %.1f)\n",
              static_cast<double>(sketches.TotalEntries()) / g.num_nodes(),
              ExpectedBottomKAdsSize(k, g.num_nodes()));

  // Query one node.
  const NodeId v = 123;
  HipEstimator hip(sketches.of(v), k, SketchFlavor::kBottomK, ranks);

  std::printf("\nnode %u:\n", v);
  for (double d : {1.0, 2.0, 3.0, 4.0}) {
    std::printf("  |N_%.0f| ~ %8.1f   (exact %llu)\n", d,
                hip.NeighborhoodCardinality(d),
                static_cast<unsigned long long>(
                    ExactNeighborhoodSize(g, v, d)));
  }
  std::printf("  reachable        ~ %10.1f (exact %u)\n",
              hip.ReachableCount(), g.num_nodes());
  std::printf("  harmonic central ~ %10.1f (exact %.1f)\n",
              hip.HarmonicCentrality(), ExactHarmonicCentrality(g, v));
  std::printf("  sum of distances ~ %10.1f (exact %.1f)\n",
              hip.DistanceSum(), ExactDistanceSum(g, v));

  // Any decay kernel and any node filter — chosen AFTER sketching.
  double women_nearby = hip.Closeness(
      [](double d) { return 1.0 / (1.0 + d); },       // alpha: decay
      [](NodeId u) { return u % 2 == 0 ? 1.0 : 0.0; }  // beta: filter
  );
  std::printf("  decay centrality restricted to even ids ~ %.1f\n",
              women_nearby);
  return 0;
}
