// Web-graph reachability ("transitive closure size") estimation — the
// original 1997 application of All-Distances Sketches.
//
// On a directed web-like graph, |{pages reachable from p}| and |{pages that
// can reach p}| require a full traversal per page exactly, but come out of
// the forward/backward ADS in microseconds. This example also demonstrates
// weighted graphs (latency-weighted links) with the PrunedDijkstra builder
// and the (1+eps)-approximate LocalUpdates builder.
//
// Run:  ./web_reachability

#include <cstdio>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/stats.h"

using namespace hipads;

int main() {
  // R-MAT: the standard synthetic web/social graph with power-law in/out
  // degrees. 2^13 pages, ~5 links each, directed.
  Graph web = Rmat(/*scale=*/13, /*edges_per_node=*/5, /*seed=*/99);
  std::printf("web graph: %u pages, %llu links\n", web.num_nodes(),
              static_cast<unsigned long long>(web.num_arcs()));

  const uint32_t k = 24;
  auto ranks = RankAssignment::Uniform(5);

  // Forward sketches estimate out-reachability; sketches of the transpose
  // estimate in-reachability.
  AdsSet fwd = BuildAdsDp(web, k, SketchFlavor::kBottomK, ranks);
  AdsSet bwd = BuildAdsDp(web.Transpose(), k, SketchFlavor::kBottomK, ranks);

  std::printf("\n%-8s %-14s %-12s %-14s\n", "page", "reach (est)",
              "reach(exact)", "reached-by (est)");
  RunningStat rel_err;
  for (NodeId page : {1u, 42u, 777u, 4096u, 8000u}) {
    HipEstimator f(fwd.of(page), k, SketchFlavor::kBottomK, ranks);
    HipEstimator b(bwd.of(page), k, SketchFlavor::kBottomK, ranks);
    uint64_t exact = CountReachable(web, page);
    std::printf("%-8u %-14.1f %-12llu %-14.1f\n", page, f.ReachableCount(),
                static_cast<unsigned long long>(exact), b.ReachableCount());
    if (exact > 0) {
      rel_err.Add(std::abs(f.ReachableCount() - static_cast<double>(exact)) /
                  static_cast<double>(exact));
    }
  }
  std::printf("mean relative error over probes: %.3f (HIP bound %.3f)\n",
              rel_err.mean(), 1.0 / std::sqrt(2.0 * (k - 1)));

  // Latency-weighted crawl distances: "how many pages within 250ms?"
  Graph latency = RandomizeWeights(web, 10.0, 100.0, 3);
  AdsSet lat_sketches =
      BuildAdsPrunedDijkstra(latency, k, SketchFlavor::kBottomK, ranks);
  NodeId portal = 1;
  HipEstimator lat(lat_sketches.of(portal), k, SketchFlavor::kBottomK, ranks);
  for (double budget : {100.0, 250.0, 500.0}) {
    std::printf("pages within %.0fms of portal %u: ~%.0f\n", budget, portal,
                lat.NeighborhoodCardinality(budget));
  }

  // Same sketches via the node-centric (Pregel-style) builder with a
  // (1+0.25) distance slack — counts how much churn the slack saves.
  AdsBuildStats exact_stats, approx_stats;
  BuildAdsLocalUpdates(latency, k, SketchFlavor::kBottomK, ranks, 0.0,
                       &exact_stats);
  BuildAdsLocalUpdates(latency, k, SketchFlavor::kBottomK, ranks, 0.25,
                       &approx_stats);
  std::printf(
      "\nLocalUpdates churn (insert+delete): exact=%llu  (1+0.25)-approx="
      "%llu  (saved %.0f%%)\n",
      static_cast<unsigned long long>(exact_stats.insertions +
                                      exact_stats.deletions),
      static_cast<unsigned long long>(approx_stats.insertions +
                                      approx_stats.deletions),
      100.0 * (1.0 - static_cast<double>(approx_stats.insertions +
                                         approx_stats.deletions) /
                         static_cast<double>(exact_stats.insertions +
                                             exact_stats.deletions)));
  return 0;
}
