// Social-network centrality analysis at sketch speed.
//
// The scenario from the paper's introduction: given a large social graph,
// rank users by distance-decay centrality, optionally weighting or
// filtering by per-user metadata (beta) that is only chosen at query time —
// e.g. "most central users with respect to the premium subscribers".
//
// One ADS set answers all of these; an exact answer would need a full
// shortest-path computation per user per query.
//
// Run:  ./social_centrality

#include <cstdio>

#include "ads/builders.h"
#include "ads/queries.h"
#include "graph/exact.h"
#include "graph/generators.h"

using namespace hipads;

namespace {

// Synthetic per-user metadata derived from the node id: ~20% of users are
// "premium", with heavier weight.
double PremiumWeight(NodeId v) { return v % 5 == 0 ? 1.0 : 0.0; }

void PrintTop(const char* title, const Graph& g,
              const std::vector<double>& scores,
              const std::vector<double>& exact) {
  std::printf("\n%s\n  %-6s %-10s %-12s %-12s %s\n", title, "rank", "user",
              "estimated", "exact", "degree");
  auto top = TopKNodes(scores, 5);
  for (size_t i = 0; i < top.size(); ++i) {
    NodeId v = top[i];
    std::printf("  #%-5zu %-10u %-12.1f %-12.1f %u\n", i + 1, v, scores[v],
                exact.empty() ? 0.0 : exact[v], g.OutDegree(v));
  }
}

}  // namespace

int main() {
  // 20k-user social graph (preferential attachment -> heavy-tailed hubs).
  Graph g = BarabasiAlbert(20000, 4, 2024);
  const uint32_t k = 32;
  std::printf("social graph: %u users, %llu friendships\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_arcs() / 2));

  AdsSet sketches =
      BuildAdsDp(g, k, SketchFlavor::kBottomK, RankAssignment::Uniform(7));
  std::printf("sketches built: %.1f entries/user\n",
              static_cast<double>(sketches.TotalEntries()) / g.num_nodes());

  // Query 1: harmonic centrality of everyone (one sketch scan per user).
  auto harmonic = EstimateHarmonicCentralityAll(sketches);

  // Exact harmonic centrality for the estimated top-5 only (cheap spot
  // check: 5 BFS instead of 20000).
  std::vector<double> exact(g.num_nodes(), 0.0);
  for (NodeId v : TopKNodes(harmonic, 5)) {
    exact[v] = ExactHarmonicCentrality(g, v);
  }
  PrintTop("Top users by harmonic centrality:", g, harmonic, exact);

  // Query 2: same sketches, exponential-decay kernel.
  auto decay = EstimateClosenessAll(
      sketches, [](double d) { return std::pow(2.0, -d); },
      [](NodeId) { return 1.0; });
  PrintTop("Top users by 2^-d decay centrality:", g, decay, {});

  // Query 3: same sketches, restricted to premium users (beta filter chosen
  // at query time — the HIP flexibility the paper highlights over
  // beta-specific sketch computations).
  auto premium = EstimateClosenessAll(
      sketches, [](double d) { return 1.0 / (1.0 + d); }, PremiumWeight);
  PrintTop("Top users by proximity to premium users:", g, premium, {});

  // Query 4: the graph's distance distribution (ANF-style), from the same
  // sketches.
  std::printf("\ndistance distribution (ordered pairs within d):\n");
  double total = static_cast<double>(g.num_nodes()) *
                 (g.num_nodes() - 1);
  for (const auto& [d, pairs] : EstimateNeighborhoodFunction(sketches)) {
    std::printf("  d <= %-4.0f : %12.0f  (%.1f%% of pairs)\n", d, pairs,
                100.0 * pairs / total);
    if (pairs / total > 0.999) break;
  }
  return 0;
}
