// Offline/online sketch pipeline: build once, persist, serve many queries.
//
// The deployment shape hipads targets: an offline job sketches the graph
// and writes the ADS set to disk; online services load it and answer
// estimation queries — cardinalities, centralities, node-pair similarity,
// effective diameter — without ever touching the graph again.
//
// Run:  ./sketch_pipeline

#include <cstdio>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/queries.h"
#include "ads/serialize.h"
#include "ads/similarity.h"
#include "graph/generators.h"

using namespace hipads;

int main() {
  const char* path = "/tmp/hipads_pipeline.ads";

  // ---- offline job ----
  {
    Graph g = WattsStrogatz(/*n=*/8000, /*neighbors=*/4, /*beta=*/0.1,
                            /*seed=*/5);
    AdsSet set = BuildAdsDp(g, /*k=*/24, SketchFlavor::kBottomK,
                            RankAssignment::Uniform(99));
    Status s = WriteAdsSetFile(set, path);
    std::printf("offline: sketched %u nodes -> %s (%s)\n", g.num_nodes(),
                path, s.ToString().c_str());
  }  // graph goes out of scope — the online side never sees it

  // ---- online service ----
  auto loaded = ReadAdsSetFile(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const AdsSet& set = loaded.value();
  std::printf("online: loaded %zu sketches, k=%u, %llu entries\n",
              set.ads.size(), set.k,
              static_cast<unsigned long long>(set.TotalEntries()));

  // Whole-graph shape statistics.
  std::printf("\nsmall-world check:\n");
  std::printf("  effective diameter (0.9) ~ %.0f\n",
              EstimateEffectiveDiameter(set, 0.9));
  std::printf("  mean distance            ~ %.2f\n",
              EstimateMeanDistance(set));

  // Per-node queries.
  for (NodeId v : {100u, 4000u}) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    std::printf("node %u: |N_10| ~ %.0f, |N_20| ~ %.0f, harmonic ~ %.0f\n",
                v, est.NeighborhoodCardinality(10.0),
                est.NeighborhoodCardinality(20.0), est.HarmonicCentrality());
  }

  // Node-pair similarity from the coordinated sketches: ring neighbors
  // share most of their neighborhood, antipodal nodes share little.
  std::printf("\nneighborhood Jaccard at distance 3:\n");
  std::printf("  J(1000, 1002) ~ %.2f   (ring neighbors)\n",
              JaccardSimilarity(set.of(1000), set.of(1002), 3.0, set.k));
  std::printf("  J(1000, 5000) ~ %.2f   (far apart)\n",
              JaccardSimilarity(set.of(1000), set.of(5000), 3.0, set.k));
  std::printf("  |N_3(1000) ∩ N_3(1002)| ~ %.0f\n",
              IntersectionCardinality(set.of(1000), set.of(1002), 3.0,
                                      set.k));
  std::remove(path);
  return 0;
}
