// Offline/online sketch pipeline: build once, persist, serve many queries.
//
// The deployment shape hipads targets: an offline job sketches the graph
// and writes the ADS set to disk (v2 binary — the serving format); online
// services open it behind the unified AdsBackend storage layer and answer
// estimation queries — cardinalities, centralities, node-pair similarity,
// effective diameter — without ever touching the graph again. The
// whole-graph statistics are gathered by ONE fused sweep (ads/sweep.h):
// the service builds a SweepPlan with every collector it needs, so the
// backend is swept once however many statistics are served. The same
// serving code runs against every storage engine; here it is exercised
// over a zero-copy mmap open and over a sharded, residency-bounded open
// with background prefetch, and both agree bitwise.
//
// Run:  ./sketch_pipeline

#include <cstdio>
#include <filesystem>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/serialize.h"
#include "ads/shard.h"
#include "ads/similarity.h"
#include "ads/sweep.h"
#include "graph/generators.h"

using namespace hipads;

namespace {

// The online service: answers everything through the AdsBackend surface,
// never knowing which storage engine is behind it.
int Serve(const char* label, const AdsBackend& set) {
  std::printf("\n[%s] serving %zu sketches, k=%u, %llu entries\n", label,
              set.num_nodes(), set.k(),
              static_cast<unsigned long long>(set.TotalEntries()));

  // Whole-graph shape statistics + centrality ranking, all from ONE pass:
  // the histogram collector yields the effective diameter and the mean
  // distance, the top-k collector the most central nodes — a sharded
  // backend reads every shard file exactly once for all four numbers.
  SweepPlan plan;
  auto* hist = plan.Emplace<DistanceHistogramCollector>();
  auto* top = plan.Emplace<TopKCollector>(3, [](const HipEstimator& est) {
    return est.HarmonicCentrality();
  });
  Status swept = RunSweep(set, plan);
  if (!swept.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n", swept.ToString().c_str());
    return 1;
  }
  std::printf("  effective diameter (0.9) ~ %.0f\n",
              hist->EffectiveDiameter(0.9));
  std::printf("  mean distance            ~ %.2f\n", hist->MeanDistance());
  std::printf("  top harmonic nodes:");
  for (NodeId v : top->TopNodes()) {
    std::printf(" %u (%.0f)", v, top->values()[v]);
  }
  std::printf("\n");

  // Per-node queries.
  for (NodeId v : {100u, 4000u}) {
    auto view = set.ViewOf(v);
    if (!view.ok()) return 1;
    HipEstimator est(view.value(), set.k(), set.flavor(), set.ranks());
    std::printf("  node %u: |N_10| ~ %.0f, |N_20| ~ %.0f, harmonic ~ %.0f\n",
                v, est.NeighborhoodCardinality(10.0),
                est.NeighborhoodCardinality(20.0), est.HarmonicCentrality());
  }

  // Node-pair similarity from the coordinated sketches: ring neighbors
  // share most of their neighborhood, antipodal nodes share little.
  auto u = set.ViewOf(1000);
  auto near = set.ViewOf(1002);
  auto far = set.ViewOf(5000);
  if (!u.ok() || !near.ok() || !far.ok()) return 1;
  std::printf("  J_3(1000, 1002) ~ %.2f (ring neighbors), "
              "J_3(1000, 5000) ~ %.2f (far apart)\n",
              JaccardSimilarity(u.value(), near.value(), 3.0, set.k()),
              JaccardSimilarity(u.value(), far.value(), 3.0, set.k()));
  return 0;
}

}  // namespace

int main() {
  const char* path = "/tmp/hipads_pipeline.ads2";
  const char* shard_dir = "/tmp/hipads_pipeline_shards";

  // ---- offline job: sketch, persist as v2 binary, shard for scale-out ----
  {
    Graph g = WattsStrogatz(/*n=*/8000, /*neighbors=*/4, /*beta=*/0.1,
                            /*seed=*/5);
    AdsSet set = BuildAdsDp(g, /*k=*/24, SketchFlavor::kBottomK,
                            RankAssignment::Uniform(99));
    Status s = WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2);
    Status sh =
        WriteShardedAdsSet(FlatAdsSet::FromAdsSet(set), shard_dir, 4);
    std::printf("offline: sketched %u nodes -> %s (%s), 4 shards -> %s (%s)\n",
                g.num_nodes(), path, s.ToString().c_str(), shard_dir,
                sh.ToString().c_str());
  }  // graph goes out of scope — the online side never sees it

  // ---- online service, same code over two storage engines ----
  AdsBackendOptions mmap_options;
  mmap_options.mode = BackendMode::kMmap;
  auto mapped = OpenAdsBackend(path, mmap_options);
  if (!mapped.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 mapped.status().ToString().c_str());
    return 1;
  }
  if (Serve("mmap, zero-copy", *mapped.value()) != 0) return 1;

  AdsBackendOptions sharded_options;  // copy mode, prefetch on by default
  sharded_options.max_resident = 2;
  auto sharded = OpenAdsBackend(shard_dir, sharded_options);
  if (!sharded.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  if (Serve("sharded, prefetching", *sharded.value()) != 0) return 1;

  std::remove(path);
  std::filesystem::remove_all(shard_dir);
  return 0;
}
