// Streaming distinct counting with HIP (paper Section 6) — the data-stream
// face of All-Distances Sketches.
//
// A synthetic clickstream with heavy repetition is fed to four counters
// sharing comparable memory:
//   * HyperLogLog (bias-corrected)              — the prior state of the art
//   * HIP on the very same HLL sketch           — Algorithm 3
//   * HIP on a bottom-k sketch with full ranks  — higher accuracy per entry
//   * an exact hash-set                         — ground truth (unbounded!)
// plus a Morris counter approximating the TOTAL (non-distinct) event count
// in ~6 bits.
//
// Run:  ./stream_distinct

#include <cstdio>
#include <unordered_set>

#include "stream/hip_distinct.h"
#include "stream/hll.h"
#include "stream/morris.h"
#include "stream/stream_ads.h"
#include "util/random.h"

using namespace hipads;

int main() {
  const uint32_t k = 64;  // registers / sketch size
  const uint64_t events = 2000000;

  HyperLogLog hll(k, /*seed=*/11);
  HllHipCounter hip_hll(k, /*seed=*/11);
  BottomKHipCounter hip_botk(k, /*seed=*/11);
  MorrisCounter total(1.0 + 1.0 / 64);
  std::unordered_set<uint64_t> exact;

  // Zipf-ish clickstream: popular pages repeat constantly, the tail is
  // visited once; the distinct count grows sublinearly.
  Rng rng(2024);
  std::printf("%-12s %-10s %-12s %-12s %-12s %-12s\n", "events", "exact",
              "HLL", "HIP(HLL)", "HIP(botk)", "Morris total");
  for (uint64_t t = 1; t <= events; ++t) {
    uint64_t page;
    if (rng.NextBernoulli(0.6)) {
      page = rng.NextBounded(1000);  // hot set
    } else {
      page = 1000 + rng.NextBounded(t);  // growing tail
    }
    hll.Add(page);
    hip_hll.Add(page);
    hip_botk.Add(page);
    total.Increment(rng);
    exact.insert(page);
    if ((t & (t - 1)) == 0 && t >= 1024) {  // powers of two
      std::printf("%-12llu %-10zu %-12.0f %-12.0f %-12.0f %-12.0f\n",
                  static_cast<unsigned long long>(t), exact.size(),
                  hll.Estimate(), hip_hll.Estimate(), hip_botk.Estimate(),
                  total.Estimate());
    }
  }

  double truth = static_cast<double>(exact.size());
  std::printf(
      "\nfinal relative errors:  HLL %.2f%%   HIP(HLL) %.2f%%   HIP(botk) "
      "%.2f%%\n",
      100.0 * std::abs(hll.Estimate() - truth) / truth,
      100.0 * std::abs(hip_hll.Estimate() - truth) / truth,
      100.0 * std::abs(hip_botk.Estimate() - truth) / truth);
  std::printf("memory: %u 5-bit registers + one ~6-bit HIP register vs a "
              "%zu-entry hash set\n",
              k, exact.size());

  // Bonus: a time-decaying sketch of the most recent occurrences
  // (Section 3.1) — "how many distinct pages in the last minute" style
  // queries. Distance = seconds since last click.
  auto ranks = RankAssignment::Uniform(3);
  RecentOccurrenceAds recent(16, ranks, /*horizon=*/static_cast<double>(events));
  for (uint64_t t = 0; t < 100000; ++t) {
    recent.Process(rng.NextBounded(5000), static_cast<double>(t));
  }
  std::printf("\nrecent-occurrence ADS after 100k clicks over 5000 pages: "
              "%zu entries (~k ln n)\n",
              recent.CurrentSize());
  return 0;
}
