// FIG2: reproduces Figure 2 of the paper — NRMSE and MRE of neighborhood
// size estimators (k-mins / k-partition / bottom-k basic, bottom-k HIP,
// permutation) as a function of the neighborhood size, for k = 5, 10, 50,
// alongside the analytic reference curves.
//
// Expected shape (paper): all basic flavors converge to 1/sqrt(k-2) for
// n >> k; bottom-k basic is exact below k; k-partition is the worst for
// n <~ 2k; bottom-k HIP sits a factor sqrt(2) below basic; the permutation
// estimator matches HIP up to ~0.2 n and wins beyond it.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/cardinality_sim.h"
#include "sketch/cardinality.h"
#include "util/table.h"

namespace hipads {
namespace {

void RunPanel(uint32_t k, uint64_t max_n, uint32_t runs) {
  CardinalitySimConfig cfg;
  cfg.k = k;
  cfg.max_n = max_n;
  cfg.runs = runs;
  cfg.seed = 20140601;
  cfg.points_per_decade = 8;
  CardinalitySimResult result = RunCardinalitySim(cfg);

  std::printf(
      "\n=== Figure 2 panel: k=%u, %u runs, max n=%llu ===\n"
      "reference: basic CV UB = %.4f  HIP CV UB = %.4f  "
      "basic MRE UB = %.4f  HIP MRE ref = %.4f\n",
      k, runs, static_cast<unsigned long long>(max_n), BasicCv(k), HipCv(k),
      BasicMre(k), HipMre(k));

  for (const char* metric : {"NRMSE", "MRE"}) {
    Table t({"size", "kmins_basic", "kpart_basic", "botk_basic", "botk_hip",
             "perm"});
    for (size_t i = 0; i < result.checkpoints.size(); ++i) {
      t.NewRow().Add(result.checkpoints[i]);
      for (const char* name : {"kmins_basic", "kpart_basic", "botk_basic",
                               "botk_hip", "perm"}) {
        const ErrorStats& e = result.errors.at(name)[i];
        t.Add(std::string(metric) == "NRMSE" ? e.nrmse() : e.mre(), 4);
      }
    }
    std::printf("\n-- %s, k=%u --\n", metric, k);
    t.PrintText(std::cout);
  }

  // Summary row used by EXPERIMENTS.md: asymptotic (largest-n) values.
  size_t last = result.checkpoints.size() - 1;
  double basic = result.errors.at("botk_basic")[last].nrmse();
  double hip = result.errors.at("botk_hip")[last].nrmse();
  std::printf(
      "\nasymptotic NRMSE  botk_basic=%.4f (UB %.4f)  botk_hip=%.4f (UB "
      "%.4f)  basic/hip ratio=%.3f (paper: sqrt(2)=1.414)\n",
      basic, BasicCv(k), hip, HipCv(k), basic / hip);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  hipads::RunPanel(5, 10000, hipads::ScaledRuns(1000, quick));
  hipads::RunPanel(10, 10000, hipads::ScaledRuns(500, quick));
  hipads::RunPanel(50, 50000, hipads::ScaledRuns(250, quick));
  return 0;
}
