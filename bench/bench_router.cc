// CLAIM-SERVE-ROUTER: overhead of the distributed scatter/gather path over
// in-process execution, measured on the loopback transport so the numbers
// isolate protocol cost (frame encode/decode, checksums, collector partial
// serialization and node-order absorption) from network latency.
//
//   * In-process RunSweep over one arena — the floor.
//   * Loopback single server: the whole wire path (request encode ->
//     frame checksum -> server decode -> sweep -> partial encode -> client
//     absorb) with one hop and no fan-out.
//   * Loopback router over 2 / 4 range servers: adds the fleet scatter
//     (one thread per range server), the gather's node-order absorption
//     and the router-side merge.
//
// Two plan shapes bound the partial-state bandwidth: a per-node plan
// (harmonic + top-k: 8 bytes per node per collector on the wire) and a
// histogram-bearing plan (the replay stream is O(HIP entries) — the honest
// cost of distributing an order-sensitive fold, see sweep.h). On one
// machine the router cannot win wall-clock; the claim this records is that
// the protocol tax is a small constant factor, so the fleet's win on real
// hardware is the per-server memory/parallelism, not hidden overhead.
// Recorded baseline: BENCH_router.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/flat_ads.h"
#include "ads/sweep.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/router.h"
#include "serve/server.h"
#include "util/metrics.h"

namespace hipads {
namespace {

const FlatAdsSet& SharedSet(uint32_t n) {
  static std::map<uint32_t, FlatAdsSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Graph g = ErdosRenyi(n, 4ULL * n, /*undirected=*/true, 42);
    it = cache
             .emplace(n, FlatAdsSet::FromAdsSet(BuildAdsDp(
                             g, 16, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(1))))
             .first;
  }
  return it->second;
}

std::vector<CollectorSpec> PerNodePlan() {
  return {{CollectorKind::kHarmonic, 0, 0, 0.0},
          {CollectorKind::kTopK, static_cast<uint32_t>(ScoreKind::kHarmonic),
           10, 0.0}};
}

std::vector<CollectorSpec> HistogramPlan() {
  std::vector<CollectorSpec> spec = PerNodePlan();
  spec.insert(spec.begin(), {CollectorKind::kDistanceHistogram, 0, 0, 0.0});
  return spec;
}

std::vector<CollectorSpec> PlanFor(int shape) {
  return shape == 0 ? PerNodePlan() : HistogramPlan();
}

// A loopback fleet of `servers` range servers over even node splits.
struct Fleet {
  std::vector<FlatAdsSet> slices;
  std::vector<std::unique_ptr<FlatAdsBackend>> backends;
  std::vector<std::unique_ptr<AdsServerCore>> cores;
  FleetManifest manifest;

  Fleet(const FlatAdsSet& full, uint32_t servers) {
    NodeId n = static_cast<NodeId>(full.num_nodes());
    manifest.num_nodes = n;
    slices.reserve(servers);  // backends alias slice addresses
    for (uint32_t s = 0; s < servers; ++s) {
      NodeId begin = static_cast<NodeId>(uint64_t{n} * s / servers);
      NodeId end = static_cast<NodeId>(uint64_t{n} * (s + 1) / servers);
      FlatAdsSet slice;
      slice.flavor = full.flavor;
      slice.k = full.k;
      slice.ranks = full.ranks;
      for (NodeId v = begin; v < end; ++v) {
        auto entries = full.of(v).entries();
        slice.AppendNode(
            std::vector<AdsEntry>(entries.begin(), entries.end()));
      }
      slices.push_back(std::move(slice));
      backends.push_back(std::make_unique<FlatAdsBackend>(&slices.back()));
      ServerOptions options;
      options.node_begin = begin;
      // Response caches off: these benchmarks measure the protocol tax of
      // sweeps that actually run, not cache hits on repeated identical
      // requests.
      options.point_cache_entries = 0;
      options.sweep_cache_entries = 0;
      cores.push_back(
          std::make_unique<AdsServerCore>(backends[s].get(), options));
      manifest.servers.push_back(
          FleetEntry{"loop:" + std::to_string(s), begin, end});
    }
  }

  ChannelFactory Factory() {
    return [this](const std::string& address)
               -> StatusOr<std::unique_ptr<Channel>> {
      for (size_t i = 0; i < manifest.servers.size(); ++i) {
        if (manifest.servers[i].address == address) {
          return std::unique_ptr<Channel>(
              std::make_unique<LoopbackChannel>(cores[i].get()));
        }
      }
      return Status::NotFound(address);
    };
  }
};

// Arg 0: plan shape (0 = per-node, 1 = + histogram).
void BM_SweepInProcess(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  std::vector<CollectorSpec> spec = PlanFor(static_cast<int>(state.range(0)));
  FlatAdsBackend backend(&set);
  for (auto _ : state) {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    benchmark::DoNotOptimize(RunSweep(backend, plan, 1).ok());
  }
}
BENCHMARK(BM_SweepInProcess)->Arg(0)->Arg(1);

void BM_SweepLoopbackSingleServer(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  std::vector<CollectorSpec> spec = PlanFor(static_cast<int>(state.range(0)));
  FlatAdsBackend backend(&set);
  ServerOptions options;
  options.point_cache_entries = 0;
  options.sweep_cache_entries = 0;
  AdsServerCore core(&backend, options);
  LoopbackChannel channel(&core);
  SweepRequestMsg request;
  request.collectors = spec;
  for (auto _ : state) {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    benchmark::DoNotOptimize(
        ExecuteRemoteSweep(channel, request, set.num_nodes(), built.value())
            .ok());
  }
}
BENCHMARK(BM_SweepLoopbackSingleServer)->Arg(0)->Arg(1);

// Arg 0: plan shape; arg 1: range servers.
void BM_SweepLoopbackRouter(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  std::vector<CollectorSpec> spec = PlanFor(static_cast<int>(state.range(0)));
  Fleet fleet(set, static_cast<uint32_t>(state.range(1)));
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  if (!router.ok()) {
    state.SkipWithError(router.status().ToString().c_str());
    return;
  }
  SweepRequestMsg request;
  request.collectors = spec;
  for (auto _ : state) {
    SweepPlan plan;
    auto built = BuildPlanFromSpec(spec, &plan);
    benchmark::DoNotOptimize(
        router.value().ExecuteSweep(request, built.value()).ok());
  }
}
BENCHMARK(BM_SweepLoopbackRouter)
    ->Args({0, 2})
    ->Args({0, 4})
    ->Args({1, 2})
    ->Args({1, 4});

// Point-query protocol tax: direct estimator evaluation vs the same
// lookup through the loopback router.
void BM_PointInProcess(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  NodeId v = 0;
  for (auto _ : state) {
    HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
    benchmark::DoNotOptimize(est.HarmonicCentrality());
    v = (v + 1) % set.num_nodes();
  }
}
BENCHMARK(BM_PointInProcess);

void BM_PointLoopbackRouter(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  Fleet fleet(set, 2);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  if (!router.ok()) {
    state.SkipWithError(router.status().ToString().c_str());
    return;
  }
  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.d = std::numeric_limits<double>::infinity();
  uint64_t v = 0;
  for (auto _ : state) {
    request.node = v;
    benchmark::DoNotOptimize(router.value().Point(request).ok());
    v = (v + 1) % set.num_nodes();
  }
}
BENCHMARK(BM_PointLoopbackRouter);

// CLAIM-SERVE-BATCH: wire-v3 point batching amortizes both the per-frame
// protocol tax (encode, checksum, dispatch, response frame) and the
// per-request backend work — the server executes a batch as ONE pass in
// node order, sharing one estimator materialization across same-node
// entries and reusing the computed response outright for identical
// entries. The workload models a hot working set (entries rotate over 8
// distinct nodes; response caches are off so every request pays real
// compute). requests/sec = items_per_second. Arg 0: batch size (1 = the
// single kPointRequest baseline; 512 exceeds kMaxPointBatchEntries so the
// client splits it into two frames). Arg 1: transport (0 = loopback,
// 1 = TCP on 127.0.0.1). Caveat: the recorded baseline ran in a 1-core
// container, where the TCP server thread contends with the client — the
// TCP rows understate real hardware; the loopback rows are the honest
// protocol-tax comparison.
void BM_PointThroughputBatched(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  FlatAdsBackend backend(&set);
  ServerOptions options;
  options.point_cache_entries = 0;
  options.sweep_cache_entries = 0;
  AdsServerCore core(&backend, options);

  const size_t batch = static_cast<size_t>(state.range(0));
  const bool tcp = state.range(1) == 1;
  std::unique_ptr<TcpServer> server;
  std::unique_ptr<Channel> channel;
  if (tcp) {
    server = std::make_unique<TcpServer>(&core, TcpServerOptions{0, 1});
    if (!server->Start().ok()) {
      state.SkipWithError("cannot start the TCP server");
      return;
    }
    auto connected = TcpChannel::Connect("127.0.0.1", server->port());
    if (!connected.ok()) {
      state.SkipWithError(connected.status().ToString().c_str());
      return;
    }
    channel = std::move(connected).value();
  } else {
    channel = std::make_unique<LoopbackChannel>(&core);
  }
  AdsClient client(channel.get());

  constexpr uint64_t kHotNodes = 8;
  std::vector<PointRequestMsg> requests(batch);
  for (size_t i = 0; i < batch; ++i) {
    requests[i].kind = PointKind::kNodeStats;
    requests[i].node = (i % kHotNodes) * 499;
    requests[i].d = std::numeric_limits<double>::infinity();
  }
  uint64_t rotate = 0;
  for (auto _ : state) {
    if (batch == 1) {
      requests[0].node = (rotate++ % kHotNodes) * 499;
      benchmark::DoNotOptimize(client.Point(requests[0]).ok());
    } else {
      benchmark::DoNotOptimize(client.PointBatch(requests).ok());
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
  if (server) server->Stop();
}
BENCHMARK(BM_PointThroughputBatched)
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({1, 1})
    ->Args({8, 1})
    ->Args({64, 1})
    ->Args({512, 1});

// CLAIM-SERVE-MIXED: closed-loop point-query latency (p50/p99 counters,
// microseconds) through the loopback router against a lock-free immutable
// server — alone (arg 0 = 0) and with a continuous whole-graph sweep
// hammering the same server from a background thread (arg 0 = 1). The
// lock-free read path is the claim under test: on an ImmutableReads
// backend a running sweep must not serialize point lookups behind it, so
// the p99 under sweep load stays within a small factor of the unloaded
// p99 rather than inflating by a whole sweep duration. Caches are
// disabled so every request pays its real computation.
void BM_PointLatencyMixedLoad(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  FlatAdsBackend backend(&set);
  ServerOptions options;
  options.point_cache_entries = 0;
  options.sweep_cache_entries = 0;
  AdsServerCore core(&backend, options);
  auto factory = [&core](const std::string&)
      -> StatusOr<std::unique_ptr<Channel>> {
    return std::unique_ptr<Channel>(std::make_unique<LoopbackChannel>(&core));
  };
  FleetManifest manifest;
  manifest.num_nodes = set.num_nodes();
  manifest.servers = {
      {"loop:0", 0, static_cast<NodeId>(set.num_nodes())}};
  auto router = FleetRouter::Connect(manifest, factory);
  if (!router.ok()) {
    state.SkipWithError(router.status().ToString().c_str());
    return;
  }

  std::atomic<bool> stop{false};
  std::thread sweeper;
  if (state.range(0) == 1) {
    sweeper = std::thread([&] {
      SweepRequestMsg request;
      request.collectors = PerNodePlan();
      while (!stop.load(std::memory_order_relaxed)) {
        SweepPlan plan;
        auto built = BuildPlanFromSpec(request.collectors, &plan);
        if (!built.ok()) return;
        benchmark::DoNotOptimize(
            router.value().ExecuteSweep(request, built.value()).ok());
      }
    });
  }

  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.d = std::numeric_limits<double>::infinity();
  std::vector<double> latencies_us;
  uint64_t v = 0;
  for (auto _ : state) {
    request.node = v;
    auto start = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(router.value().Point(request).ok());
    latencies_us.push_back(
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start)
            .count());
    v = (v + 1) % set.num_nodes();
  }
  stop.store(true);
  if (sweeper.joinable()) sweeper.join();

  std::sort(latencies_us.begin(), latencies_us.end());
  auto percentile = [&](double q) {
    if (latencies_us.empty()) return 0.0;
    size_t at = static_cast<size_t>(q * (latencies_us.size() - 1));
    return latencies_us[at];
  };
  state.counters["p50_us"] = percentile(0.5);
  state.counters["p99_us"] = percentile(0.99);
}
BENCHMARK(BM_PointLatencyMixedLoad)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

// CLAIM-SERVE-METRICS: the observability tax. The same loopback point
// workload as BM_PointLoopbackRouter, with the metrics registry recording
// (arg 0 = 1, the production default) vs the SetMetricsEnabled(false) kill
// switch (arg 0 = 0). The record path is a relaxed atomic add per
// instrument, so the two rows must be within noise of each other — that
// closeness IS the claim, and --perf-smoke below guards it in CI.
void BM_PointMetricsOverhead(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  Fleet fleet(set, 2);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  if (!router.ok()) {
    state.SkipWithError(router.status().ToString().c_str());
    return;
  }
  SetMetricsEnabled(state.range(0) == 1);
  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.d = std::numeric_limits<double>::infinity();
  uint64_t v = 0;
  for (auto _ : state) {
    request.node = v;
    benchmark::DoNotOptimize(router.value().Point(request).ok());
    v = (v + 1) % set.num_nodes();
  }
  SetMetricsEnabled(true);
}
BENCHMARK(BM_PointMetricsOverhead)->Arg(0)->Arg(1);

// ---------------------------------------------------------------------------
// --perf-smoke: the CI guard on the observability tax. Times the routed
// point workload with metrics disabled and enabled (best-of-3, seconds,
// not the full benchmark run) and fails if recording costs more than 30%.
// The check is a self-relative ratio measured back to back on the same
// box, so no baseline file is needed and absolute machine speed cancels
// out — safe on a slow 1-core CI runner.
// ---------------------------------------------------------------------------

double TimeRoutedPointsMs(FleetRouter& router, uint64_t num_nodes,
                          bool metrics_on) {
  constexpr uint64_t kQueries = 400;
  SetMetricsEnabled(metrics_on);
  PointRequestMsg request;
  request.kind = PointKind::kNodeStats;
  request.d = std::numeric_limits<double>::infinity();
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (uint64_t i = 0; i < kQueries; ++i) {
      request.node = i % num_nodes;
      if (!router.Point(request).ok()) {
        SetMetricsEnabled(true);
        return -1.0;
      }
    }
    auto stop = std::chrono::steady_clock::now();
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  SetMetricsEnabled(true);
  return best;
}

int PerfSmoke() {
  const FlatAdsSet& set = SharedSet(4000);
  Fleet fleet(set, 2);
  auto router = FleetRouter::Connect(fleet.manifest, fleet.Factory());
  if (!router.ok()) {
    std::fprintf(stderr, "perf-smoke: fleet connect failed: %s\n",
                 router.status().ToString().c_str());
    return 2;
  }
  // Caches are off (Fleet disables them), so every query pays real
  // estimator compute — the honest denominator for the overhead ratio.
  TimeRoutedPointsMs(router.value(), set.num_nodes(), false);  // warm up
  const double off_ms =
      TimeRoutedPointsMs(router.value(), set.num_nodes(), false);
  const double on_ms =
      TimeRoutedPointsMs(router.value(), set.num_nodes(), true);
  if (off_ms <= 0.0 || on_ms <= 0.0) {
    std::fprintf(stderr, "perf-smoke: routed point workload failed\n");
    return 2;
  }
  constexpr double kTolerance = 1.30;  // fail past a 30% overhead
  const double ratio = on_ms / off_ms;
  const bool ok = ratio <= kTolerance;
  std::printf(
      "perf-smoke: metrics-on/off ratio %.3f (on %.2fms off %.2fms)  %s\n",
      ratio, on_ms, off_ms, ok ? "ok" : "REGRESSION");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace hipads

// Records a machine-readable baseline next to the working directory unless
// the caller passes its own --benchmark_out.
int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--perf-smoke") == 0) {
    return hipads::PerfSmoke();
  }
  hipads::BenchArgs args(argc, argv, "BENCH_router.json");
  benchmark::Initialize(&args.argc, args.argv());
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
