// Shared helpers for the figure/claim reproduction harnesses.
//
// Every bench accepts an optional first argument `--quick` which divides the
// Monte-Carlo run counts by 10 — handy for smoke-testing the whole bench
// directory. Default parameters reproduce the paper-scale experiments.

#ifndef HIPADS_BENCH_BENCH_COMMON_H_
#define HIPADS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace hipads {

inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline uint32_t ScaledRuns(uint32_t runs, bool quick) {
  return quick ? (runs + 9) / 10 : runs;
}

/// Argv wrapper that injects google-benchmark's JSON output flags unless
/// the caller already passed --benchmark_out. Used by benches that record a
/// machine-readable baseline (e.g. bench_ads_build -> BENCH_ads_build.json):
///
///   int main(int argc, char** argv) {
///     hipads::BenchArgs args(argc, argv, "BENCH_ads_build.json");
///     benchmark::Initialize(&args.argc, args.argv());
///     ...
///   }
class BenchArgs {
 public:
  BenchArgs(int argc_in, char** argv_in, const std::string& default_json_out)
      : argc(argc_in) {
    bool has_out = false;
    for (int i = 0; i < argc_in; ++i) {
      args_.emplace_back(argv_in[i]);
      if (std::strcmp(argv_in[i], "--benchmark_out") == 0 ||
          std::strncmp(argv_in[i], "--benchmark_out=", 16) == 0) {
        has_out = true;
      }
    }
    if (!has_out && !default_json_out.empty()) {
      args_.push_back("--benchmark_out=" + default_json_out);
      args_.push_back("--benchmark_out_format=json");
    }
    for (std::string& s : args_) ptrs_.push_back(s.data());
    ptrs_.push_back(nullptr);
    argc = static_cast<int>(args_.size());
  }

  char** argv() { return ptrs_.data(); }

  int argc;

 private:
  std::vector<std::string> args_;
  std::vector<char*> ptrs_;
};

}  // namespace hipads

#endif  // HIPADS_BENCH_BENCH_COMMON_H_
