// Shared helpers for the figure/claim reproduction harnesses.
//
// Every bench accepts an optional first argument `--quick` which divides the
// Monte-Carlo run counts by 10 — handy for smoke-testing the whole bench
// directory. Default parameters reproduce the paper-scale experiments.

#ifndef HIPADS_BENCH_BENCH_COMMON_H_
#define HIPADS_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <cstring>
#include <string>

namespace hipads {

inline bool QuickMode(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) return true;
  }
  return false;
}

inline uint32_t ScaledRuns(uint32_t runs, bool quick) {
  return quick ? (runs + 9) / 10 : runs;
}

}  // namespace hipads

#endif  // HIPADS_BENCH_BENCH_COMMON_H_
