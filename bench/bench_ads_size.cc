// CLAIM-SIZE: verifies Lemma 2.2 — the expected bottom-k ADS size is
// k + k(H_n - H_k) ~ k(1 + ln n - ln k), and the k-partition ADS size is
// ~ k ln(n/k) — across graph families and k, by building real ADS sets and
// averaging their sizes over rank seeds.

#include <cstdio>
#include <iostream>

#include "ads/builders.h"
#include "bench_common.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

struct GraphCase {
  const char* name;
  Graph graph;
};

void Run(bool quick) {
  const uint32_t seeds = quick ? 2 : 8;
  std::vector<GraphCase> graphs;
  graphs.push_back({"erdos-renyi n=2000", ErdosRenyi(2000, 8000, true, 1)});
  graphs.push_back({"barabasi-albert n=2000", BarabasiAlbert(2000, 3, 2)});
  graphs.push_back({"grid 45x45", Grid2D(45, 45)});

  Table t({"graph", "flavor", "k", "n_reach", "measured", "lemma2.2",
           "ratio"});
  for (const GraphCase& gc : graphs) {
    uint64_t n_reach = CountReachable(gc.graph, 0);
    for (uint32_t k : {1u, 4u, 16u, 64u}) {
      for (SketchFlavor flavor :
           {SketchFlavor::kBottomK, SketchFlavor::kKPartition}) {
        if (flavor == SketchFlavor::kKPartition && k == 1) continue;
        RunningStat sizes;
        for (uint64_t seed = 0; seed < seeds; ++seed) {
          AdsSet set = BuildAdsPrunedDijkstra(
              gc.graph, k, flavor, RankAssignment::Uniform(seed * 31 + 7));
          for (NodeId v = 0; v < gc.graph.num_nodes(); ++v) {
            sizes.Add(static_cast<double>(set.of(v).size()));
          }
        }
        double expected = flavor == SketchFlavor::kBottomK
                              ? ExpectedBottomKAdsSize(k, n_reach)
                              : ExpectedKPartitionAdsSize(k, n_reach);
        t.NewRow()
            .Add(gc.name)
            .Add(flavor == SketchFlavor::kBottomK ? "bottom-k"
                                                  : "k-partition")
            .Add(static_cast<uint64_t>(k))
            .Add(n_reach)
            .Add(sizes.mean(), 5)
            .Add(expected, 5)
            .Add(sizes.mean() / expected, 4);
      }
    }
  }
  std::printf(
      "=== CLAIM-SIZE (Lemma 2.2): expected ADS sizes ===\n"
      "bottom-k expectation k + k(H_n - H_k); k-partition ~ k H_{n/k}.\n"
      "ratio should be ~1.0 (k-partition formula is a first-order "
      "approximation).\n\n");
  t.PrintText(std::cout);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  hipads::Run(hipads::QuickMode(argc, argv));
  return 0;
}
