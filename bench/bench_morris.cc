// CLAIM-MORRIS: Section 7 — approximate counters with weighted updates and
// merge. The counter stores ~log2 log_b n bits; with base b = 1 + 1/2^j the
// relative error is about 2^-j. The bench sweeps bases for unit-increment
// streams, weighted streams, merges, and the HIP-accumulation pattern
// (geometrically growing increments) the paper targets.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "stream/morris.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void UnitIncrements(bool quick) {
  const uint64_t n = 100000;
  const uint32_t runs = quick ? 100 : 1000;
  Table t({"base b", "mean/n", "NRMSE", "b-1", "bits for n=1e5"});
  Rng rng(31);
  for (double b : {2.0, 1.5, 1.25, 1.125, 1.0625}) {
    RunningStat mean;
    ErrorStats err;
    for (uint32_t run = 0; run < runs; ++run) {
      MorrisCounter c(b);
      for (uint64_t i = 0; i < n; ++i) c.Increment(rng);
      mean.Add(c.Estimate());
      err.Add(c.Estimate(), static_cast<double>(n));
    }
    double bits = std::log2(std::log(static_cast<double>(n)) / std::log(b));
    t.NewRow()
        .Add(b, 5)
        .Add(mean.mean() / static_cast<double>(n), 4)
        .Add(err.nrmse(), 4)
        .Add(b - 1.0, 4)
        .Add(bits, 3);
  }
  std::printf(
      "=== CLAIM-MORRIS: unit increments (n=%llu, %u runs) ===\n"
      "unbiased for every base; error shrinks with b-1.\n\n",
      static_cast<unsigned long long>(n), runs);
  t.PrintText(std::cout);
}

void WeightedAndMerge(bool quick) {
  const uint32_t runs = quick ? 200 : 2000;
  Rng rng(37);
  Table t({"scenario", "truth", "mean/truth", "NRMSE"});

  {  // Weighted updates with mixed magnitudes.
    const double truth = 1234.5 + 0.75 + 987654.0 + 42.0;
    RunningStat mean;
    ErrorStats err;
    for (uint32_t run = 0; run < runs; ++run) {
      MorrisCounter c(1.25);
      c.Add(1234.5, rng);
      c.Add(0.75, rng);
      c.Add(987654.0, rng);
      c.Add(42.0, rng);
      mean.Add(c.Estimate());
      err.Add(c.Estimate(), truth);
    }
    t.NewRow()
        .Add("weighted adds, b=1.25")
        .Add(truth, 6)
        .Add(mean.mean() / truth, 4)
        .Add(err.nrmse(), 4);
  }

  {  // Merge of two counters.
    const double truth = 5000.0;
    RunningStat mean;
    ErrorStats err;
    for (uint32_t run = 0; run < runs; ++run) {
      MorrisCounter a(1.25), b(1.25);
      for (int i = 0; i < 2000; ++i) a.Increment(rng);
      for (int i = 0; i < 3000; ++i) b.Increment(rng);
      a.Merge(b, rng);
      mean.Add(a.Estimate());
      err.Add(a.Estimate(), truth);
    }
    t.NewRow()
        .Add("merge 2000+3000, b=1.25")
        .Add(truth, 6)
        .Add(mean.mean() / truth, 4)
        .Add(err.nrmse(), 4);
  }

  {  // HIP accumulation: increments that grow like the HIP adjusted
     // weights (~1/k of the running total), where small bases shine.
    const uint32_t k = 16;
    RunningStat mean;
    ErrorStats err;
    double truth = 0.0;
    for (uint32_t run = 0; run < runs; ++run) {
      MorrisCounter c(1.0 + 1.0 / k);
      double total = 0.0, w = 1.0;
      while (total < 100000.0) {
        c.Add(w, rng);
        total += w;
        w = std::max(1.0, total / k);
      }
      truth = total;
      mean.Add(c.Estimate());
      err.Add(c.Estimate(), total);
    }
    t.NewRow()
        .Add("HIP-style adds, b=1+1/16")
        .Add(truth, 6)
        .Add(mean.mean() / truth, 4)
        .Add(err.nrmse(), 4);
  }

  std::printf(
      "\n=== CLAIM-MORRIS: weighted updates / merge / HIP accumulation "
      "(%u runs) ===\nall unbiased; HIP-style growing increments keep the "
      "error near b-1 (Section 7).\n\n",
      runs);
  t.PrintText(std::cout);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  hipads::UnitIncrements(quick);
  hipads::WeightedAndMerge(quick);
  return 0;
}
