// CLAIM-BUILD: ADS construction cost (Section 3, Appendix B). Expected
// O(km log n) edge relaxations for PrunedDijkstra and DP; LocalUpdates pays
// extra churn on weighted graphs which the (1+eps)-approximate mode caps.
// google-benchmark timings plus relaxation/insertion counters; the
// "relax/(km ln n)" counter should stay O(1) across scales.

#include <benchmark/benchmark.h>

#include <cmath>

#include "ads/builders.h"
#include "ads/flat_ads.h"
#include "ads/hip.h"
#include "ads/queries.h"
#include "bench_common.h"
#include "graph/generators.h"

namespace hipads {
namespace {

Graph MakeEr(uint32_t n, uint64_t degree, bool weighted) {
  Graph g = ErdosRenyi(n, n * degree / 2, /*undirected=*/true, 42);
  if (weighted) g = RandomizeWeights(g, 0.5, 2.0, 7);
  return g;
}

void Counters(benchmark::State& state, const Graph& g, uint32_t k,
              const AdsBuildStats& stats) {
  double m = static_cast<double>(g.num_arcs());
  double kmlogn = k * m * std::log(static_cast<double>(g.num_nodes()));
  state.counters["relaxations"] =
      benchmark::Counter(static_cast<double>(stats.relaxations));
  state.counters["insertions"] =
      benchmark::Counter(static_cast<double>(stats.insertions));
  state.counters["deletions"] =
      benchmark::Counter(static_cast<double>(stats.deletions));
  state.counters["relax/(km ln n)"] =
      benchmark::Counter(static_cast<double>(stats.relaxations) / kmlogn);
}

void BM_PrunedDijkstra(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t k = static_cast<uint32_t>(state.range(1));
  Graph g = MakeEr(n, 8, /*weighted=*/true);
  auto ranks = RankAssignment::Uniform(1);
  AdsBuildStats stats;
  for (auto _ : state) {
    stats = AdsBuildStats();
    AdsSet set =
        BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks, &stats);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
  Counters(state, g, k, stats);
}
BENCHMARK(BM_PrunedDijkstra)
    ->Args({1000, 4})
    ->Args({1000, 16})
    ->Args({4000, 4})
    ->Args({4000, 16})
    ->Args({16000, 16})
    ->Unit(benchmark::kMillisecond);

void BM_Dp(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t k = static_cast<uint32_t>(state.range(1));
  Graph g = MakeEr(n, 8, /*weighted=*/false);
  auto ranks = RankAssignment::Uniform(1);
  AdsBuildStats stats;
  for (auto _ : state) {
    stats = AdsBuildStats();
    AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks, &stats);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
  Counters(state, g, k, stats);
}
BENCHMARK(BM_Dp)
    ->Args({1000, 4})
    ->Args({1000, 16})
    ->Args({4000, 4})
    ->Args({4000, 16})
    ->Unit(benchmark::kMillisecond);

void BM_LocalUpdates(benchmark::State& state) {
  uint32_t n = static_cast<uint32_t>(state.range(0));
  uint32_t k = static_cast<uint32_t>(state.range(1));
  double epsilon = static_cast<double>(state.range(2)) / 100.0;
  Graph g = MakeEr(n, 8, /*weighted=*/true);
  auto ranks = RankAssignment::Uniform(1);
  AdsBuildStats stats;
  for (auto _ : state) {
    stats = AdsBuildStats();
    AdsSet set = BuildAdsLocalUpdates(g, k, SketchFlavor::kBottomK, ranks,
                                      epsilon, &stats);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
  Counters(state, g, k, stats);
}
BENCHMARK(BM_LocalUpdates)
    ->Args({1000, 4, 0})
    ->Args({1000, 4, 25})   // (1+0.25)-approximate
    ->Args({1000, 16, 0})
    ->Args({1000, 16, 25})
    ->Unit(benchmark::kMillisecond);

// Thread-count sweep for the rank-window pruned-Dijkstra builder. Arg 0 is
// the sequential baseline; the determinism suite guarantees every row
// computes the same sketches, so the timings are directly comparable.
// Weighted graphs so the DP builder is not an option (Algorithm 1's home
// turf). Run with --benchmark_out for the JSON baseline; expected scaling
// is ~T/2 at T threads (the frozen-window searches pay bounded extra
// exploration for their independence).
void BM_PrunedDijkstraParallel(benchmark::State& state) {
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  uint32_t n = static_cast<uint32_t>(state.range(1));
  uint32_t k = 16;
  Graph g = MakeEr(n, 8, /*weighted=*/true);
  auto ranks = RankAssignment::Uniform(1);
  AdsBuildStats stats;
  for (auto _ : state) {
    stats = AdsBuildStats();
    AdsSet set =
        threads == 0
            ? BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks,
                                     &stats)
            : BuildAdsPrunedDijkstraParallel(g, k, SketchFlavor::kBottomK,
                                             ranks, threads, &stats);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
  Counters(state, g, k, stats);
  state.counters["exp entries/node"] = benchmark::Counter(
      ExpectedBottomKAdsSize(k, g.num_nodes()));
}
BENCHMARK(BM_PrunedDijkstraParallel)
    ->Args({0, 4000})  // sequential baseline
    ->Args({1, 4000})  // parallel entry point, 1 thread (= sequential path)
    ->Args({2, 4000})
    ->Args({4, 4000})
    ->Args({8, 4000})
    ->Args({0, 16000})
    ->Args({4, 16000})
    ->Unit(benchmark::kMillisecond);

void BM_DpParallel(benchmark::State& state) {
  uint32_t threads = static_cast<uint32_t>(state.range(0));
  Graph g = MakeEr(8000, 8, /*weighted=*/false);
  auto ranks = RankAssignment::Uniform(1);
  for (auto _ : state) {
    AdsSet set = threads == 0
                     ? BuildAdsDp(g, 16, SketchFlavor::kBottomK, ranks)
                     : BuildAdsDpParallel(g, 16, SketchFlavor::kBottomK,
                                          ranks, threads);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
}
BENCHMARK(BM_DpParallel)
    ->Arg(0)  // sequential baseline
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_Flavors(benchmark::State& state) {
  uint32_t flavor_id = static_cast<uint32_t>(state.range(0));
  SketchFlavor flavor = flavor_id == 0   ? SketchFlavor::kBottomK
                        : flavor_id == 1 ? SketchFlavor::kKMins
                                         : SketchFlavor::kKPartition;
  Graph g = MakeEr(2000, 8, /*weighted=*/false);
  auto ranks = RankAssignment::Uniform(1);
  for (auto _ : state) {
    AdsSet set = BuildAdsDp(g, 8, flavor, ranks);
    benchmark::DoNotOptimize(set.TotalEntries());
  }
}
BENCHMARK(BM_Flavors)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_HipQueryThroughput(benchmark::State& state) {
  // Query-side cost: HIP scan + estimate over one node's ADS.
  Graph g = MakeEr(8000, 8, false);
  uint32_t k = 16;
  auto ranks = RankAssignment::Uniform(1);
  AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
  NodeId v = 0;
  for (auto _ : state) {
    auto hip = ComputeHipWeights(set.of(v), k, SketchFlavor::kBottomK, ranks);
    benchmark::DoNotOptimize(hip.data());
    v = (v + 1) % g.num_nodes();
  }
  state.counters["ads entries"] = benchmark::Counter(
      static_cast<double>(set.TotalEntries()) / g.num_nodes());
}
BENCHMARK(BM_HipQueryThroughput);

// Whole-graph estimator hot path: per-node-vector AdsSet (arg 0) vs the
// flat CSR arena (arg 1), both swept single-threaded so the measured delta
// is purely the storage layout. The flat arena wins by turning n pointer
// chases into one linear pass.
void BM_HarmonicAllStorage(benchmark::State& state) {
  bool flat = state.range(0) == 1;
  Graph g = MakeEr(8000, 8, /*weighted=*/false);
  uint32_t k = 16;
  auto ranks = RankAssignment::Uniform(1);
  AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
  FlatAdsSet flat_set = FlatAdsSet::FromAdsSet(set);
  for (auto _ : state) {
    std::vector<double> scores =
        flat ? EstimateHarmonicCentralityAll(flat_set, 1)
             : EstimateHarmonicCentralityAll(set, 1);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_HarmonicAllStorage)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

// Same comparison for the neighbourhood-function sweep (the ANF workload),
// plus a thread-count sweep over the flat arena.
void BM_NeighborhoodFunctionStorage(benchmark::State& state) {
  bool flat = state.range(0) == 1;
  uint32_t threads = static_cast<uint32_t>(state.range(1));
  Graph g = MakeEr(8000, 8, /*weighted=*/false);
  uint32_t k = 16;
  auto ranks = RankAssignment::Uniform(1);
  AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
  FlatAdsSet flat_set = FlatAdsSet::FromAdsSet(set);
  for (auto _ : state) {
    auto nf = flat ? EstimateNeighborhoodFunction(flat_set, threads)
                   : EstimateNeighborhoodFunction(set, threads);
    benchmark::DoNotOptimize(&nf);
  }
}
BENCHMARK(BM_NeighborhoodFunctionStorage)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({1, 2})
    ->Args({1, 4})
    ->Args({1, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hipads

// Records a machine-readable baseline next to the working directory unless
// the caller passes its own --benchmark_out.
int main(int argc, char** argv) {
  hipads::BenchArgs args(argc, argv, "BENCH_ads_build.json");
  benchmark::Initialize(&args.argc, args.argv());
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
