// CLAIM-CENTR: Corollary 5.2 / Section 9 — HIP estimates of distance-decay
// closeness centralities C_{alpha,beta} have CV <= 1/sqrt(2(k-1)), including
// beta filters specified only at query time and beta-weighted neighborhood
// weights with exponential ranks. Measured per-node NRMSE against exact
// oracles on synthetic social-like graphs, plus top-10 recovery.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "ads/queries.h"
#include "bench_common.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "graph/traversal.h"
#include "sketch/cardinality.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void AccuracySweep(bool quick) {
  Graph g = BarabasiAlbert(1500, 3, 11);
  const uint32_t seeds = quick ? 6 : 30;
  const NodeId probes[] = {3, 77, 400, 1200};
  auto alpha = [](double d) { return 1.0 / (1.0 + d); };
  auto beta = [](NodeId v) { return v % 3 == 0 ? 1.0 : 0.5; };

  Table t({"k", "harmonic NRMSE", "decay NRMSE", "dist-sum NRMSE",
           "HIP CV bound"});
  for (uint32_t k : {8u, 16u, 32u, 64u}) {
    ErrorStats harm_err, decay_err, ds_err;
    std::vector<double> exact_harm, exact_decay, exact_ds;
    for (NodeId p : probes) {
      exact_harm.push_back(ExactHarmonicCentrality(g, p));
      exact_decay.push_back(ExactClosenessCentrality(g, p, alpha, beta));
      exact_ds.push_back(ExactDistanceSum(g, p));
    }
    for (uint64_t seed = 0; seed < seeds; ++seed) {
      AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK,
                              RankAssignment::Uniform(seed * 17 + k));
      for (size_t pi = 0; pi < std::size(probes); ++pi) {
        HipEstimator est(set.of(probes[pi]), k, SketchFlavor::kBottomK,
                         set.ranks);
        harm_err.Add(est.HarmonicCentrality(), exact_harm[pi]);
        decay_err.Add(est.Closeness(alpha, beta), exact_decay[pi]);
        ds_err.Add(est.DistanceSum(), exact_ds[pi]);
      }
    }
    t.NewRow()
        .Add(static_cast<uint64_t>(k))
        .Add(harm_err.nrmse(), 4)
        .Add(decay_err.nrmse(), 4)
        .Add(ds_err.nrmse(), 4)
        .Add(HipCv(k), 4);
  }
  std::printf(
      "=== CLAIM-CENTR: centrality accuracy on Barabasi-Albert n=1500 "
      "(%u seeds x 4 probe nodes) ===\nCor. 5.2 bounds the CV of "
      "monotone-decay centralities by 1/sqrt(2(k-1)); the distance-sum "
      "statistic (increasing g) is not covered by the bound and may "
      "exceed it.\n\n",
      seeds);
  t.PrintText(std::cout);
}

void WeightedNodes(bool quick) {
  // Section 9: neighborhood weights with beta-weighted exponential ranks.
  Graph g = ErdosRenyi(1200, 4800, true, 23);
  const uint32_t seeds = quick ? 6 : 30;
  const uint32_t k = 16;
  auto beta = [](uint64_t v) { return v % 10 == 0 ? 5.0 : 1.0; };
  const NodeId probe = 42;
  const double d = 3.0;
  double truth = 0.0;
  {
    auto dist = ShortestPathDistances(g, probe);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (dist[v] <= d) truth += beta(v);
    }
  }
  ErrorStats err;
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    auto ranks = RankAssignment::Exponential(seed * 7 + 1, beta);
    AdsSet set = BuildAdsPrunedDijkstra(g, k, SketchFlavor::kBottomK, ranks);
    HipEstimator est(set.of(probe), k, SketchFlavor::kBottomK, ranks);
    err.Add(est.NeighborhoodWeight(
                d, [&beta](NodeId v) { return beta(v); }),
            truth);
  }
  std::printf(
      "\n=== CLAIM-CENTR (Section 9): beta-weighted neighborhood weight ===\n"
      "Erdos-Renyi n=1200, k=%u, %u seeds: NRMSE=%.4f (bound %.4f), "
      "bias=%.4f\n",
      k, seeds, err.nrmse(), HipCv(k), err.mean_bias());
}

void TopTenRecovery(bool quick) {
  Graph g = BarabasiAlbert(2000, 3, 31);
  const uint32_t k = quick ? 16 : 64;
  // Exact top-10 by harmonic centrality.
  std::vector<double> exact(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    exact[v] = ExactHarmonicCentrality(g, v);
  }
  auto exact_top = TopKNodes(exact, 10);
  AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK,
                          RankAssignment::Uniform(3));
  auto est_top = TopKNodes(EstimateHarmonicCentralityAll(set), 10);
  uint32_t overlap = 0;
  for (NodeId v : est_top) {
    if (std::find(exact_top.begin(), exact_top.end(), v) != exact_top.end()) {
      ++overlap;
    }
  }
  std::printf(
      "\n=== CLAIM-CENTR: top-10 harmonic-centrality recovery ===\n"
      "Barabasi-Albert n=2000, k=%u, single sketch set: %u/10 of the exact "
      "top-10 recovered.\n",
      k, overlap);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  hipads::AccuracySweep(quick);
  hipads::WeightedNodes(quick);
  hipads::TopTenRecovery(quick);
  return 0;
}
