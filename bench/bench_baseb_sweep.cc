// CLAIM-BASEB: Section 5.6's base-b trade-off. HIP on bottom-k sketches
// with base-b discretized ranks stays unbiased while the CV grows like
// sqrt((1+b)/(4(k-1))); smaller bases buy accuracy for register bits
// (~log2 log_b n bits per register). The bench sweeps b (including the
// base-2^(1/i) refinements discussed for HyperLogLog) and compares the
// measured NRMSE with the back-of-the-envelope analysis.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sketch/cardinality.h"
#include "stream/hip_distinct.h"
#include "util/hash.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void Run(bool quick) {
  const uint64_t n = 100000;
  const uint32_t runs = quick ? 50 : 500;

  std::printf(
      "=== CLAIM-BASEB (Section 5.6): HIP with base-b ranks ===\n"
      "bottom-k HIP counter, n=%llu, %u runs; analysis CV = "
      "sqrt((1+b)/(4(k-1))) (b=1 row is the full-precision sketch).\n\n",
      static_cast<unsigned long long>(n), runs);

  for (uint32_t k : {16u, 64u}) {
    Table t({"base b", "mean/n", "NRMSE", "analysis", "ratio",
             "reg bits (n=1e5)"});
    for (double b : {1.0, std::sqrt(2.0), 2.0, 4.0, 8.0, 16.0}) {
      RunningStat mean;
      ErrorStats err;
      for (uint64_t run = 0; run < runs; ++run) {
        uint64_t seed = HashCombine(k * 77ULL + static_cast<uint64_t>(b * 64),
                                    run);
        BottomKHipCounter c(k, seed, b > 1.0 ? b : 0.0);
        for (uint64_t e = 0; e < n; ++e) c.Add(e);
        mean.Add(c.Estimate());
        err.Add(c.Estimate(), static_cast<double>(n));
      }
      double analysis = HipBaseBCv(k, b);
      double bits =
          b > 1.0 ? std::log2(std::log(static_cast<double>(n)) / std::log(b))
                  : 53.0;  // full-precision rank
      t.NewRow()
          .Add(b, 4)
          .Add(mean.mean() / static_cast<double>(n), 4)
          .Add(err.nrmse(), 4)
          .Add(analysis, 4)
          .Add(err.nrmse() / analysis, 3)
          .Add(bits, 3);
    }
    std::printf("-- k = %u --\n", k);
    t.PrintText(std::cout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  hipads::Run(hipads::QuickMode(argc, argv));
  return 0;
}
