// CLAIM-QG: the introduction/Corollary 5.3 claim that for distance-decay
// statistics Q_g (Eq. 1) the HIP estimator beats the naive
// MinHash-sample-of-reachable-nodes estimator by up to a factor n/k in
// variance, because the uniform sample is unlikely to include the close
// nodes where g concentrates.
//
// Two settings: (a) the stream model with several decay functions, and
// (b) decay centralities of actual nodes in a Barabasi-Albert graph.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "ads/builders.h"
#include "ads/estimators.h"
#include "bench_common.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "util/hash.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

Ads StreamAds(uint64_t n, uint32_t k, const RankAssignment& ranks) {
  std::vector<AdsEntry> candidates;
  for (uint64_t i = 0; i < n; ++i) {
    candidates.push_back(AdsEntry{static_cast<NodeId>(i), 0, ranks.rank(i),
                                  static_cast<double>(i)});
  }
  return Ads::CanonicalBottomK(std::move(candidates), k, ranks.sup());
}

struct DecayFn {
  const char* name;
  double (*fn)(double);
};

void StreamExperiment(bool quick) {
  const uint32_t k = 16;
  const uint64_t n = 10000;
  const uint32_t runs = quick ? 100 : 1000;
  DecayFn decays[] = {
      {"exp(-d)", [](double d) { return std::exp(-d); }},
      {"exp(-d/100)", [](double d) { return std::exp(-d / 100.0); }},
      {"1/(1+d)", [](double d) { return 1.0 / (1.0 + d); }},
      {"2^-d (paper [21])", [](double d) { return std::pow(2.0, -d); }},
      {"harmonic 1/d", [](double d) { return d > 0 ? 1.0 / d : 0.0; }},
      {"constant 1", [](double) { return 1.0; }},
  };

  Table t({"g(d)", "truth", "HIP nrmse", "naive nrmse", "var ratio",
           "n/k bound"});
  for (const DecayFn& decay : decays) {
    double truth = 0.0;
    for (uint64_t i = 0; i < n; ++i) truth += decay.fn(static_cast<double>(i));
    ErrorStats hip_err, naive_err;
    for (uint64_t run = 0; run < runs; ++run) {
      auto ranks = RankAssignment::Uniform(HashCombine(10101, run));
      Ads ads = StreamAds(n, k, ranks);
      HipEstimator hip(ads, k, SketchFlavor::kBottomK, ranks);
      auto g_fn = [&decay](NodeId, double d) { return decay.fn(d); };
      hip_err.Add(hip.Qg(g_fn), truth);
      naive_err.Add(NaiveQgEstimate(ads, k, g_fn), truth);
    }
    double var_ratio = std::pow(naive_err.nrmse() / hip_err.nrmse(), 2.0);
    t.NewRow()
        .Add(decay.name)
        .Add(truth, 5)
        .Add(hip_err.nrmse(), 4)
        .Add(naive_err.nrmse(), 4)
        .Add(var_ratio, 4)
        .Add(static_cast<double>(n) / k, 4);
  }
  std::printf(
      "=== CLAIM-QG (stream model): HIP vs naive subset-weight estimator "
      "===\nk=%u, n=%llu, %u runs. Sharper decay -> larger HIP advantage "
      "(up to ~n/k in variance); for constant g the two are comparable.\n\n",
      k, static_cast<unsigned long long>(n), runs);
  t.PrintText(std::cout);
}

void GraphExperiment(bool quick) {
  const uint32_t k = 16;
  Graph g = BarabasiAlbert(3000, 3, 5);
  const uint32_t runs = quick ? 10 : 60;
  const NodeId probe = 123;
  auto alpha = [](double d) { return std::exp(-d); };
  double truth =
      ExactQg(g, probe, [&alpha](NodeId, double d) { return alpha(d); });
  ErrorStats hip_err, naive_err;
  for (uint64_t seed = 0; seed < runs; ++seed) {
    auto ranks = RankAssignment::Uniform(seed * 101 + 3);
    AdsSet set = BuildAdsDp(g, k, SketchFlavor::kBottomK, ranks);
    HipEstimator hip(set.of(probe), k, SketchFlavor::kBottomK, ranks);
    auto g_fn = [&alpha](NodeId, double d) { return alpha(d); };
    hip_err.Add(hip.Qg(g_fn), truth);
    naive_err.Add(NaiveQgEstimate(set.of(probe), k, g_fn), truth);
  }
  std::printf(
      "\n=== CLAIM-QG (Barabasi-Albert graph, n=3000, k=%u, %u seeds) ===\n"
      "exponential-decay centrality of one node: HIP nrmse=%.4f, naive "
      "nrmse=%.4f, variance ratio=%.1f\n",
      k, runs, hip_err.nrmse(), naive_err.nrmse(),
      std::pow(naive_err.nrmse() / hip_err.nrmse(), 2.0));
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  hipads::StreamExperiment(quick);
  hipads::GraphExperiment(quick);
  return 0;
}
