// CLAIM-PERM: Section 5.4/5.5 — the permutation estimator (bottom-k ADS
// over a strict permutation of [n]) is never worse than plain HIP and gains
// a significant advantage once the queried cardinality exceeds ~0.2 n,
// because permutation ranks carry strictly more information than i.i.d.
// uniform ranks.

#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "stream/hip_distinct.h"
#include "util/hash.h"
#include "util/random.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void RunPanel(uint32_t k, bool quick) {
  const uint64_t n = 10000;
  const uint32_t runs = quick ? 100 : 1000;
  const double fractions[] = {0.01, 0.05, 0.1, 0.2, 0.4, 0.7, 1.0};

  std::vector<ErrorStats> perm_err(std::size(fractions));
  std::vector<ErrorStats> hip_err(std::size(fractions));
  Rng rng(k * 7919);
  for (uint32_t run = 0; run < runs; ++run) {
    PermutationDistinctCounter perm(
        k, rng.NextPermutation(static_cast<uint32_t>(n)));
    BottomKHipCounter hip(k, HashCombine(k, run));
    size_t next = 0;
    for (uint64_t i = 0; i < n; ++i) {
      perm.Add(i);
      hip.Add(i);
      while (next < std::size(fractions) &&
             i + 1 == static_cast<uint64_t>(fractions[next] * n)) {
        double truth = static_cast<double>(i + 1);
        perm_err[next].Add(perm.Estimate(), truth);
        hip_err[next].Add(hip.Estimate(), truth);
        ++next;
      }
    }
  }

  Table t({"cardinality/n", "perm NRMSE", "HIP NRMSE", "perm/HIP"});
  for (size_t i = 0; i < std::size(fractions); ++i) {
    t.NewRow()
        .Add(fractions[i], 3)
        .Add(perm_err[i].nrmse(), 4)
        .Add(hip_err[i].nrmse(), 4)
        .Add(perm_err[i].nrmse() / hip_err[i].nrmse(), 3);
  }
  std::printf(
      "\n=== CLAIM-PERM: permutation estimator vs HIP, k=%u (n=%llu, %u "
      "runs) ===\nexpected: ratio ~1 below 0.2n, well below 1 beyond it.\n\n",
      k, static_cast<unsigned long long>(n), runs);
  t.PrintText(std::cout);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  for (uint32_t k : {5u, 10u, 50u}) hipads::RunPanel(k, quick);
  return 0;
}
