// APP-B1: Appendix B.1 — ANF/hyperANF-style limited computation. Each node
// keeps only HyperLogLog registers of its growing neighborhood; after each
// synchronous merge round the neighbourhood function N(d) is read off with
// either the basic (HLL) estimator — classic hyperANF — or the running HIP
// counter on the same register stream, which the paper says improves
// accuracy "essentially without changing the computation".

#include <cmath>
#include <cstdio>
#include <iostream>

#include "ads/anf.h"
#include "bench_common.h"
#include "graph/exact.h"
#include "graph/generators.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void Run(const char* name, const Graph& g, bool quick) {
  const uint32_t k = 64;
  const uint32_t seeds = quick ? 5 : 40;

  // Exact neighbourhood function.
  std::map<double, uint64_t> hist = ExactDistanceDistribution(g);
  std::vector<double> exact = {static_cast<double>(g.num_nodes())};
  double running = exact[0];
  for (const auto& [d, c] : hist) {
    running += static_cast<double>(c);
    exact.push_back(running);
  }

  size_t depth = exact.size();
  std::vector<ErrorStats> basic_err(depth), hip_err(depth);
  for (uint64_t seed = 0; seed < seeds; ++seed) {
    AnfResult basic = HyperAnf(g, k, seed * 11 + 3, AnfEstimator::kBasic);
    AnfResult hip = HyperAnf(g, k, seed * 11 + 3, AnfEstimator::kHip);
    for (size_t d = 0; d < depth; ++d) {
      double b = d < basic.neighbourhood_function.size()
                     ? basic.neighbourhood_function[d]
                     : basic.neighbourhood_function.back();
      double h = d < hip.neighbourhood_function.size()
                     ? hip.neighbourhood_function[d]
                     : hip.neighbourhood_function.back();
      basic_err[d].Add(b, exact[d]);
      hip_err[d].Add(h, exact[d]);
    }
  }

  Table t({"d", "exact N(d)", "hyperANF (HLL) NRMSE", "hyperANF+HIP NRMSE",
           "ratio"});
  for (size_t d = 0; d < depth; ++d) {
    t.NewRow()
        .Add(static_cast<uint64_t>(d))
        .Add(exact[d], 6)
        .Add(basic_err[d].nrmse(), 4)
        .Add(hip_err[d].nrmse(), 4)
        .Add(basic_err[d].nrmse() / std::max(1e-12, hip_err[d].nrmse()), 3);
  }
  std::printf(
      "\n=== APP-B1: hyperANF neighbourhood function, basic vs HIP readout "
      "— %s, k=%u registers, %u seeds ===\nratio > 1 means HIP is more "
      "accurate at that distance.\n\n",
      name, k, seeds);
  t.PrintText(std::cout);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  // Two growth regimes. On the grid, neighborhoods grow by small batches
  // per round, so the register-event stream is close to per-element and
  // the HIP readout wins everywhere. On the low-diameter BA graph most of
  // the graph arrives within two rounds; multiple distinct elements
  // collapse into single register events and the HIP readout undercounts
  // at the explosion rounds (the granularity caveat in ads/anf.h) while
  // still winning at small distances.
  hipads::Run("grid 30x30 (gradual growth)", hipads::Grid2D(30, 30), quick);
  hipads::Run("barabasi-albert n=1000 (explosive growth)",
              hipads::BarabasiAlbert(1000, 3, 17), quick);
  return 0;
}
