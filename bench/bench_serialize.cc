// CLAIM-SERVE: load-path cost of the two on-disk formats. The v1 text
// parser re-tokenizes two %.17g doubles per entry; the v2 binary loader is
// two memcpys plus validation and a checksum pass. The recorded baseline
// (BENCH_serialize.json) pins the binary load at >= 5x the text parse
// throughput on the n=4000 sweep — the number that justifies v2 as the
// serving format. Also measured: serialization cost both ways and the
// sharded whole-graph sweep overhead vs the single arena.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <map>

#include "ads/builders.h"
#include "ads/flat_ads.h"
#include "ads/queries.h"
#include "ads/serialize.h"
#include "ads/shard.h"
#include "bench_common.h"
#include "graph/generators.h"

namespace hipads {
namespace {

// One sketch set per graph size, shared across iterations (building at
// n=4000 dominates the bench run otherwise).
const FlatAdsSet& SharedSet(uint32_t n) {
  static std::map<uint32_t, FlatAdsSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Graph g = ErdosRenyi(n, 4ULL * n, /*undirected=*/true, 42);
    it = cache
             .emplace(n, FlatAdsSet::FromAdsSet(BuildAdsDp(
                             g, 16, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(1))))
             .first;
  }
  return it->second;
}

void BM_SerializeTextV1(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string text = SerializeAdsSet(set);
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["entries"] =
      benchmark::Counter(static_cast<double>(set.TotalEntries()));
}
BENCHMARK(BM_SerializeTextV1)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

void BM_SerializeBinaryV2(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(static_cast<uint32_t>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string blob = SerializeAdsSetBinary(set);
    bytes = blob.size();
    benchmark::DoNotOptimize(blob.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes) * state.iterations());
  state.counters["entries"] =
      benchmark::Counter(static_cast<double>(set.TotalEntries()));
}
BENCHMARK(BM_SerializeBinaryV2)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

// The acceptance pair: parse throughput text vs binary, same sketches.
void BM_ParseTextV1(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(static_cast<uint32_t>(state.range(0)));
  std::string text = SerializeAdsSet(set);
  for (auto _ : state) {
    auto parsed = ParseFlatAdsSet(text);
    benchmark::DoNotOptimize(parsed.value().TotalEntries());
  }
  state.SetBytesProcessed(static_cast<int64_t>(text.size()) *
                          state.iterations());
  state.counters["entries"] =
      benchmark::Counter(static_cast<double>(set.TotalEntries()));
}
BENCHMARK(BM_ParseTextV1)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

void BM_ParseBinaryV2(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(static_cast<uint32_t>(state.range(0)));
  std::string blob = SerializeAdsSetBinary(set);
  for (auto _ : state) {
    auto parsed = ParseFlatAdsSetBinary(blob);
    benchmark::DoNotOptimize(parsed.value().TotalEntries());
  }
  state.SetBytesProcessed(static_cast<int64_t>(blob.size()) *
                          state.iterations());
  state.counters["entries"] =
      benchmark::Counter(static_cast<double>(set.TotalEntries()));
}
BENCHMARK(BM_ParseBinaryV2)->Arg(1000)->Arg(4000)->Unit(
    benchmark::kMillisecond);

// File-level round trip including the OS: what `hipads_cli query` pays
// before the first estimate.
void BM_ReadFileBinaryV2(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(static_cast<uint32_t>(state.range(0)));
  std::string path =
      (std::filesystem::temp_directory_path() / "bench_serialize.ads2")
          .string();
  WriteAdsSetFile(set, path, AdsFileFormat::kBinaryV2);
  for (auto _ : state) {
    auto loaded = ReadFlatAdsSetFile(path);
    benchmark::DoNotOptimize(loaded.value().TotalEntries());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_ReadFileBinaryV2)->Arg(4000)->Unit(benchmark::kMillisecond);

// Sharded sweep vs single arena: the price of bounded resident memory is
// re-loading each shard arena once per sweep.
void BM_HarmonicAllSharded(benchmark::State& state) {
  uint32_t shards = static_cast<uint32_t>(state.range(0));
  const FlatAdsSet& set = SharedSet(4000);
  if (shards == 0) {
    for (auto _ : state) {
      auto scores = EstimateHarmonicCentralityAll(set, 1);
      benchmark::DoNotOptimize(scores.data());
    }
    return;
  }
  std::string dir =
      (std::filesystem::temp_directory_path() / "bench_serialize_shards")
          .string();
  WriteShardedAdsSet(set, dir, shards);
  auto opened = ShardedAdsSet::Open(dir, nullptr, /*max_resident=*/1);
  for (auto _ : state) {
    auto scores = EstimateHarmonicCentralityAll(opened.value(), 1);
    benchmark::DoNotOptimize(scores.value().data());
  }
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_HarmonicAllSharded)
    ->Arg(0)  // unsharded baseline
    ->Arg(2)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace hipads

// Records a machine-readable baseline next to the working directory unless
// the caller passes its own --benchmark_out.
int main(int argc, char** argv) {
  hipads::BenchArgs args(argc, argv, "BENCH_serialize.json");
  benchmark::Initialize(&args.argc, args.argv());
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
