// FIG3: reproduces Figure 3 of the paper — NRMSE and MRE of approximate
// distinct counters on the exact HyperLogLog sketch (k-partition, base-2
// ranks, 5-bit saturating registers): the HLL raw estimator, the HLL
// bias-corrected estimator, and HIP applied to the same sketch state, for
// k = 16, 32, 64 registers, cardinalities up to 10^6.
//
// Expected shape (paper): HLL raw overshoots badly at small n; corrected
// HLL shows the "bump" where the corrections hand over; HIP is smooth,
// unbiased, and asymptotically ~ sqrt(3/(4k)) = 0.866/sqrt(k), below HLL's
// ~1.04-1.08/sqrt(k).

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "sim/cardinality_sim.h"
#include "sketch/cardinality.h"
#include "util/table.h"

namespace hipads {
namespace {

void RunPanel(uint32_t k, uint32_t runs) {
  DistinctCountSimConfig cfg;
  cfg.k = k;
  cfg.register_cap = 31;  // 5-bit registers as in the paper
  cfg.max_n = 1000000;
  cfg.runs = runs;
  cfg.seed = 20140603;
  cfg.points_per_decade = 4;
  CardinalitySimResult result = RunDistinctCountSim(cfg);

  std::printf(
      "\n=== Figure 3 panel: k=%u registers (5-bit), %u runs ===\n"
      "reference: HIP base-2 CV analysis sqrt((b+1)/(4(k-1))) = %.4f\n",
      k, runs, HipBaseBCv(k, 2.0));

  for (const char* metric : {"NRMSE", "MRE"}) {
    Table t({"cardinality", "HLLraw", "HLL", "HIP"});
    for (size_t i = 0; i < result.checkpoints.size(); ++i) {
      t.NewRow().Add(result.checkpoints[i]);
      for (const char* name : {"hll_raw", "hll", "hip"}) {
        const ErrorStats& e = result.errors.at(name)[i];
        t.Add(std::string(metric) == "NRMSE" ? e.nrmse() : e.mre(), 4);
      }
    }
    std::printf("\n-- %s, k=%u --\n", metric, k);
    t.PrintText(std::cout);
  }

  size_t last = result.checkpoints.size() - 1;
  double hll = result.errors.at("hll")[last].nrmse();
  double hip = result.errors.at("hip")[last].nrmse();
  std::printf(
      "\nasymptotic NRMSE*sqrt(k):  HLL=%.3f (paper ~1.04-1.08)  HIP=%.3f "
      "(paper ~0.866)  HLL/HIP=%.3f\n",
      hll * std::sqrt(static_cast<double>(k)),
      hip * std::sqrt(static_cast<double>(k)), hll / hip);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  bool quick = hipads::QuickMode(argc, argv);
  hipads::RunPanel(16, hipads::ScaledRuns(500, quick));
  hipads::RunPanel(32, hipads::ScaledRuns(400, quick));
  hipads::RunPanel(64, hipads::ScaledRuns(300, quick));
  return 0;
}
