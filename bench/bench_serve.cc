// CLAIM-SERVE-BACKEND: cost of getting sketches into a serving process and
// sweeping them, per storage engine behind the unified AdsBackend layer.
//
//   * Open latency, copy vs mmap: the copying loader reads the whole v2
//     file into a heap string and memcpys the two sections into vectors;
//     the mmap open maps the file and only *reads* it once for
//     checksum/structure validation — no allocation, no copy. The recorded
//     baseline (BENCH_serve.json) pins mmap open faster than the copying
//     loader at n >= 4000 — the number that justifies the zero-copy
//     backend as the serving default for big arenas.
//   * Sweep throughput: whole-graph harmonic centrality through the
//     backend surface — in-memory arena vs mmap vs resident-limited
//     sharded serving with and without the background prefetch thread
//     (prefetch hides shard load I/O behind the sweep's compute).
//   * Point lookups: AdsNodeIndex binary search vs the linear AdsView scan.
//   * CLAIM-SWEEP-FUSION: K statistics as one fused SweepPlan vs K
//     standalone whole-graph queries over a resident-limited sharded
//     backend. Sequential cost grows ~linearly in K (K shard sweeps, K
//     HIP scans per node); the fused plan pays one sweep plus only the
//     per-collector reduction — the recorded baseline justifies routing
//     every multi-statistic caller (CLI stats, examples) through one plan.
//   * CLAIM-SOA-LAYOUT: the per-node HIP estimator sweep over the flat
//     AoS arena vs the same sweep over the split SoaAdsArena
//     (dist[]/rank[]/... per-field streams). The recorded baseline shows
//     SoA does NOT beat AoS here (the scan is dominated by the HipEntry
//     output allocation, not input bandwidth), which is why the SoA
//     layout stays an experiment rather than the serving default.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ads/backend.h"
#include "ads/builders.h"
#include "ads/flat_ads.h"
#include "ads/hip.h"
#include "ads/queries.h"
#include "ads/serialize.h"
#include "ads/shard.h"
#include "ads/sweep.h"
#include "bench_common.h"
#include "graph/generators.h"

namespace hipads {
namespace {

// One sketch set per graph size, shared across iterations (building at
// n=8000 dominates the bench run otherwise).
const FlatAdsSet& SharedSet(uint32_t n) {
  static std::map<uint32_t, FlatAdsSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    Graph g = ErdosRenyi(n, 4ULL * n, /*undirected=*/true, 42);
    it = cache
             .emplace(n, FlatAdsSet::FromAdsSet(BuildAdsDp(
                             g, 16, SketchFlavor::kBottomK,
                             RankAssignment::Uniform(1))))
             .first;
  }
  return it->second;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// A v2 file for size n, written once and reused by the open benches.
const std::string& SharedFile(uint32_t n) {
  static std::map<uint32_t, std::string> files;
  auto it = files.find(n);
  if (it == files.end()) {
    std::string path = TempPath("bench_serve_" + std::to_string(n) + ".ads2");
    WriteAdsSetFile(SharedSet(n), path, AdsFileFormat::kBinaryV2);
    it = files.emplace(n, std::move(path)).first;
  }
  return it->second;
}

// The acceptance pair: full open cost (including validation) of the same
// v2 file, copying loader vs zero-copy mmap.
void BM_OpenCopy(benchmark::State& state) {
  const std::string& path = SharedFile(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto loaded = ReadFlatAdsSetFile(path);
    benchmark::DoNotOptimize(loaded.value().TotalEntries());
  }
  state.counters["entries"] = benchmark::Counter(
      static_cast<double>(SharedSet(state.range(0)).TotalEntries()));
}
BENCHMARK(BM_OpenCopy)->Arg(1000)->Arg(4000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

void BM_OpenMmap(benchmark::State& state) {
  const std::string& path = SharedFile(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    auto opened = MmapAdsSet::Open(path);
    benchmark::DoNotOptimize(opened.value().TotalEntries());
  }
  state.counters["entries"] = benchmark::Counter(
      static_cast<double>(SharedSet(state.range(0)).TotalEntries()));
}
BENCHMARK(BM_OpenMmap)->Arg(1000)->Arg(4000)->Arg(8000)->Unit(
    benchmark::kMillisecond);

// Whole-graph sweep throughput through the backend surface: the in-memory
// arena vs serving straight off the mapping.
void BM_SweepFlatBackend(benchmark::State& state) {
  FlatAdsBackend backend(&SharedSet(4000));
  for (auto _ : state) {
    auto scores = EstimateHarmonicCentralityAll(backend, 1);
    benchmark::DoNotOptimize(scores.value().data());
  }
}
BENCHMARK(BM_SweepFlatBackend)->Unit(benchmark::kMillisecond);

void BM_SweepMmapBackend(benchmark::State& state) {
  auto opened = MmapAdsSet::Open(SharedFile(4000));
  for (auto _ : state) {
    auto scores = EstimateHarmonicCentralityAll(opened.value(), 1);
    benchmark::DoNotOptimize(scores.value().data());
  }
}
BENCHMARK(BM_SweepMmapBackend)->Unit(benchmark::kMillisecond);

// Resident-limited sharded serving: the sweep re-loads each shard arena
// every iteration (max_resident bounds memory at ~2 shard arenas).
// Arg: bit 0 = prefetch, bit 1 = mmap shard opens.
void BM_SweepSharded(benchmark::State& state) {
  std::string dir = TempPath("bench_serve_shards");
  static bool written = false;
  if (!written) {
    WriteShardedAdsSet(SharedSet(4000), dir, 8);
    written = true;
  }
  ShardedOptions options;
  options.max_resident = 1;  // clamped to 2 with prefetch
  options.prefetch = (state.range(0) & 1) != 0;
  options.use_mmap = (state.range(0) & 2) != 0;
  auto opened = ShardedAdsSet::Open(dir, options);
  for (auto _ : state) {
    auto scores = EstimateHarmonicCentralityAll(opened.value(), 1);
    benchmark::DoNotOptimize(scores.value().data());
  }
  state.SetLabel(std::string(options.use_mmap ? "mmap" : "copy") +
                 (options.prefetch ? "+prefetch" : ""));
}
BENCHMARK(BM_SweepSharded)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// CLAIM-SWEEP-FUSION: K statistics, fused vs sequential, over a sharded
// backend with bounded residency (the serving shape the engine targets).
// ---------------------------------------------------------------------------

const ShardedAdsSet& SharedShardedSet() {
  static ShardedAdsSet* set = [] {
    std::string dir = TempPath("bench_serve_fusion_shards");
    WriteShardedAdsSet(SharedSet(4000), dir, 8);
    ShardedOptions options;
    options.max_resident = 1;
    auto opened = ShardedAdsSet::Open(dir, options);
    return new ShardedAdsSet(std::move(opened).value());
  }();
  return *set;
}

// The first `count` of a fixed six-statistic battery. The histogram
// collector is deliberately second so K=1 measures the cheapest
// per-node-only plan and K>=2 includes the order-sensitive reduction.
void AddCollectors(SweepPlan& plan, int64_t count) {
  if (count >= 1) plan.Emplace<HarmonicCentralityCollector>();
  if (count >= 2) plan.Emplace<DistanceHistogramCollector>();
  if (count >= 3) plan.Emplace<DistanceSumCollector>();
  if (count >= 4) plan.Emplace<ReachableCountCollector>();
  if (count >= 5) plan.Emplace<NeighborhoodSizeCollector>(2.0);
  if (count >= 6) {
    plan.Emplace<ClosenessCollector>(
        [](double d) { return 1.0 / (1.0 + d); },
        [](NodeId) { return 1.0; });
  }
}

void BM_MultiStatFused(benchmark::State& state) {
  const ShardedAdsSet& set = SharedShardedSet();
  for (auto _ : state) {
    SweepPlan plan;
    AddCollectors(plan, state.range(0));
    Status swept = RunSweep(set, plan, 1);
    benchmark::DoNotOptimize(swept.ok());
  }
  state.counters["stats"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_MultiStatFused)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

// The same statistics as standalone queries: K full backend sweeps.
void BM_MultiStatSequential(benchmark::State& state) {
  const ShardedAdsSet& set = SharedShardedSet();
  int64_t count = state.range(0);
  for (auto _ : state) {
    if (count >= 1) {
      benchmark::DoNotOptimize(EstimateHarmonicCentralityAll(set, 1).ok());
    }
    if (count >= 2) {
      benchmark::DoNotOptimize(EstimateDistanceDistribution(set, 1).ok());
    }
    if (count >= 3) {
      benchmark::DoNotOptimize(EstimateDistanceSumAll(set, 1).ok());
    }
    if (count >= 4) {
      benchmark::DoNotOptimize(EstimateReachableCountAll(set, 1).ok());
    }
    if (count >= 5) {
      benchmark::DoNotOptimize(
          EstimateNeighborhoodSizeAll(set, 2.0, 1).ok());
    }
    if (count >= 6) {
      benchmark::DoNotOptimize(
          EstimateClosenessAll(
              set, [](double d) { return 1.0 / (1.0 + d); },
              [](NodeId) { return 1.0; }, 1)
              .ok());
    }
  }
  state.counters["stats"] = benchmark::Counter(static_cast<double>(count));
}
BENCHMARK(BM_MultiStatSequential)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// CLAIM-SOA-LAYOUT: the estimator sweep over AoS vs SoA entry layouts —
// the same per-node HipEstimator construction + harmonic fold, reading
// AdsEntry structs vs split per-field streams.
// ---------------------------------------------------------------------------

void BM_SweepHipAos(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  for (auto _ : state) {
    double sum = 0.0;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
      sum += est.HarmonicCentrality();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SweepHipAos)->Unit(benchmark::kMillisecond);

void BM_SweepHipSoa(benchmark::State& state) {
  static const SoaAdsArena& soa =
      *new SoaAdsArena(SoaAdsArena::FromFlat(SharedSet(4000)));
  for (auto _ : state) {
    double sum = 0.0;
    for (NodeId v = 0; v < soa.num_nodes(); ++v) {
      HipEstimator est(soa.of(v), soa.k, soa.flavor, soa.ranks);
      sum += est.HarmonicCentrality();
    }
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_SweepHipSoa)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// CLAIM-HIP-RESIDENT: the per-node HIP estimator cost, per entry, for the
// three ways of obtaining the adjusted weights — a fresh allocating scan
// (what the estimator did before HipScratch), the allocation-free scan
// into a reusable scratch, and wrapping precomputed storage-resident
// arrays (tentpole: no scan at all, just pointer arithmetic). All three
// produce bitwise identical statistics; the recorded baseline quantifies
// what precomputation saves per query.
// ---------------------------------------------------------------------------

const FlatAdsSet& SharedHipSet(uint32_t n) {
  static std::map<uint32_t, FlatAdsSet> cache;
  auto it = cache.find(n);
  if (it == cache.end()) {
    FlatAdsSet set = SharedSet(n);  // copy, then attach the weights
    PrecomputeHipWeights(&set, 0);
    it = cache.emplace(n, std::move(set)).first;
  }
  return it->second;
}

void BM_HipScanOwned(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  for (auto _ : state) {
    double sum = 0.0;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      HipEstimator est(set.of(v), set.k, set.flavor, set.ranks);
      sum += est.HarmonicCentrality();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(set.TotalEntries()));
}
BENCHMARK(BM_HipScanOwned)->Unit(benchmark::kMillisecond);

void BM_HipScanScratch(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  HipScratch scratch;
  for (auto _ : state) {
    double sum = 0.0;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      HipEstimator est(set.of(v), set.k, set.flavor, set.ranks, &scratch);
      sum += est.HarmonicCentrality();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(set.TotalEntries()));
}
BENCHMARK(BM_HipScanScratch)->Unit(benchmark::kMillisecond);

void BM_HipPrecomputed(benchmark::State& state) {
  const FlatAdsSet& set = SharedHipSet(4000);
  for (auto _ : state) {
    double sum = 0.0;
    for (NodeId v = 0; v < set.num_nodes(); ++v) {
      const uint64_t off = set.offsets[v];
      HipEstimator est(set.of(v), set.hip_tau.data() + off,
                       set.hip_weight.data() + off);
      sum += est.HarmonicCentrality();
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(set.TotalEntries()));
}
BENCHMARK(BM_HipPrecomputed)->Unit(benchmark::kMillisecond);

// The fused battery again, over the same sharded layout but with the HIP
// section resident in every shard file: the sweep consumes the stored
// weights instead of re-scanning each node per collector pass.
const ShardedAdsSet& SharedShardedHipSet() {
  static ShardedAdsSet* set = [] {
    std::string dir = TempPath("bench_serve_fusion_hip_shards");
    WriteShardedAdsSet(SharedHipSet(4000), dir, 8);
    ShardedOptions options;
    options.max_resident = 1;
    auto opened = ShardedAdsSet::Open(dir, options);
    return new ShardedAdsSet(std::move(opened).value());
  }();
  return *set;
}

void BM_MultiStatFusedHip(benchmark::State& state) {
  const ShardedAdsSet& set = SharedShardedHipSet();
  for (auto _ : state) {
    SweepPlan plan;
    AddCollectors(plan, state.range(0));
    Status swept = RunSweep(set, plan, 1);
    benchmark::DoNotOptimize(swept.ok());
  }
  state.counters["stats"] =
      benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_MultiStatFusedHip)->Arg(1)->Arg(2)->Arg(4)->Arg(6)->Unit(
    benchmark::kMillisecond);

// Point lookups: the (dist, node) canonical order forces AdsView into a
// linear scan per probe; AdsNodeIndex answers by binary search.
void BM_PointLookupLinear(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  NodeId probe = 0;
  size_t hits = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < 64; ++v) {
      hits += set.of(v).Contains(probe) ? 1 : 0;
      probe = (probe + 97) % 4000;
    }
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PointLookupLinear);

void BM_PointLookupIndexed(benchmark::State& state) {
  const FlatAdsSet& set = SharedSet(4000);
  std::vector<AdsNodeIndex> indexes;
  indexes.reserve(64);
  for (NodeId v = 0; v < 64; ++v) indexes.emplace_back(set.of(v));
  NodeId probe = 0;
  size_t hits = 0;
  for (auto _ : state) {
    for (NodeId v = 0; v < 64; ++v) {
      hits += indexes[v].Contains(probe) ? 1 : 0;
      probe = (probe + 97) % 4000;
    }
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_PointLookupIndexed);

// ---------------------------------------------------------------------------
// --perf-smoke <baseline.json>: the CI regression guard. Times the fused
// K=1 and K=6 sweeps (scan and hip-resident) directly — seconds, not the
// full benchmark run — and compares the K=6/K=1 CPU *ratios* against the
// recorded baseline's. Ratios cancel out absolute machine speed, so the
// check is safe on a slow 1-core CI box; a >30% ratio regression means the
// per-statistic sweep cost genuinely grew and the step fails.
// ---------------------------------------------------------------------------

double TimeFusedSweepMs(const ShardedAdsSet& set, int64_t stats) {
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < 3; ++rep) {
    SweepPlan plan;
    AddCollectors(plan, stats);
    auto start = std::chrono::steady_clock::now();
    Status swept = RunSweep(set, plan, 1);
    auto stop = std::chrono::steady_clock::now();
    if (!swept.ok()) return -1.0;
    best = std::min(
        best,
        std::chrono::duration<double, std::milli>(stop - start).count());
  }
  return best;
}

// Minimal extraction from google-benchmark's JSON output: the cpu_time
// (already in ms; every bench here records with kMillisecond) of the named
// benchmark, or a negative value when absent.
double BaselineCpuMs(const std::string& json, const std::string& name) {
  size_t pos = json.find("\"name\": \"" + name + "\"");
  if (pos == std::string::npos) return -1.0;
  size_t cpu = json.find("\"cpu_time\":", pos);
  if (cpu == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + cpu + std::strlen("\"cpu_time\":"),
                     nullptr);
}

int PerfSmoke(const char* baseline_path) {
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "perf-smoke: cannot read baseline %s\n",
                 baseline_path);
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  const double b1 = BaselineCpuMs(json, "BM_MultiStatFused/1");
  const double b6 = BaselineCpuMs(json, "BM_MultiStatFused/6");
  const double bh6 = BaselineCpuMs(json, "BM_MultiStatFusedHip/6");
  if (b1 <= 0.0 || b6 <= 0.0 || bh6 <= 0.0) {
    std::fprintf(stderr,
                 "perf-smoke: baseline %s lacks BM_MultiStatFused/"
                 "BM_MultiStatFusedHip entries\n",
                 baseline_path);
    return 2;
  }

  const ShardedAdsSet& scan = SharedShardedSet();
  const ShardedAdsSet& hip = SharedShardedHipSet();
  TimeFusedSweepMs(scan, 1);  // warm the page cache and shard arenas
  TimeFusedSweepMs(hip, 1);
  const double t1 = TimeFusedSweepMs(scan, 1);
  const double t6 = TimeFusedSweepMs(scan, 6);
  const double th6 = TimeFusedSweepMs(hip, 6);
  if (t1 <= 0.0 || t6 <= 0.0 || th6 <= 0.0) {
    std::fprintf(stderr, "perf-smoke: fused sweep failed\n");
    return 2;
  }

  constexpr double kTolerance = 1.30;  // fail past a 30% ratio regression
  int failures = 0;
  struct Check {
    const char* name;
    double measured;
    double baseline;
  };
  const Check checks[] = {
      {"fused6/fused1", t6 / t1, b6 / b1},
      {"fusedhip6/fused1", th6 / t1, bh6 / b1},
  };
  for (const Check& c : checks) {
    const bool ok = c.measured <= c.baseline * kTolerance;
    std::printf("perf-smoke: %-18s measured %.3f baseline %.3f  %s\n",
                c.name, c.measured, c.baseline, ok ? "ok" : "REGRESSION");
    if (!ok) ++failures;
  }
  std::printf(
      "perf-smoke: fused1 %.2fms fused6 %.2fms fusedhip6 %.2fms (wall)\n",
      t1, t6, th6);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace hipads

// Records a machine-readable baseline next to the working directory unless
// the caller passes its own --benchmark_out.
int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "--perf-smoke") == 0) {
    return hipads::PerfSmoke(argc >= 3 ? argv[2] : "BENCH_serve.json");
  }
  hipads::BenchArgs args(argc, argv, "BENCH_serve.json");
  benchmark::Initialize(&args.argc, args.argv());
  if (benchmark::ReportUnrecognizedArguments(args.argc, args.argv())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
