// CLAIM-HLL-REG: the Section 6 register-efficiency comparison. The paper
// states the NRMSE of bias-corrected HLL is ~1.08/sqrt(k) versus
// ~sqrt(3/(4k)) = 0.866/sqrt(k) for HIP on the same sketch, so HLL needs
// ~(1.08/0.866)^2 - 1 ~ 56% more registers for the same squared error.
// This bench measures NRMSE*sqrt(k) for both estimators across k.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench_common.h"
#include "stream/hip_distinct.h"
#include "stream/hll.h"
#include "util/hash.h"
#include "util/stats.h"
#include "util/table.h"

namespace hipads {
namespace {

void Run(bool quick) {
  const uint64_t n = 200000;
  const uint32_t base_runs = quick ? 40 : 400;

  Table t({"k", "HLL nrmse*sqrt(k)", "HIP nrmse*sqrt(k)", "HLL/HIP",
           "HLL bias", "HIP bias", "extra registers"});
  for (uint32_t k : {16u, 32u, 64u, 128u, 256u}) {
    uint32_t runs = base_runs;
    ErrorStats hll_err, hip_err;
    for (uint64_t run = 0; run < runs; ++run) {
      uint64_t seed = HashCombine(k * 1000003ULL, run);
      HyperLogLog hll(k, seed);
      HllHipCounter hip(k, seed);
      for (uint64_t e = 0; e < n; ++e) {
        hll.Add(e);
        hip.Add(e);
      }
      hll_err.Add(hll.Estimate(), static_cast<double>(n));
      hip_err.Add(hip.Estimate(), static_cast<double>(n));
    }
    double sk = std::sqrt(static_cast<double>(k));
    double ratio = hll_err.nrmse() / hip_err.nrmse();
    t.NewRow()
        .Add(static_cast<uint64_t>(k))
        .Add(hll_err.nrmse() * sk, 4)
        .Add(hip_err.nrmse() * sk, 4)
        .Add(ratio, 4)
        .Add(hll_err.mean_bias(), 3)
        .Add(hip_err.mean_bias(), 3)
        .Add(ratio * ratio - 1.0, 3);
  }
  std::printf(
      "=== CLAIM-HLL-REG (Section 6): HLL vs HIP register efficiency ===\n"
      "n=%llu distinct elements per run, %u runs per k.\n"
      "paper: HLL ~1.04-1.08, HIP ~0.866, extra registers ~0.56.\n\n",
      static_cast<unsigned long long>(n), base_runs);
  t.PrintText(std::cout);
}

}  // namespace
}  // namespace hipads

int main(int argc, char** argv) {
  hipads::Run(hipads::QuickMode(argc, argv));
  return 0;
}
